/**
 * @file
 * AdaptiveController window semantics: the secure-mode dwell is
 * measured in committed instructions from the latest detector flag,
 * re-arms extend it, and expiry is inclusive at the window edge.
 */

#include <gtest/gtest.h>

#include "defense/adaptive.hh"
#include "hpc/counters.hh"
#include "sim/core.hh"

using namespace evax;

namespace
{

class AdaptiveWindowTest : public ::testing::Test
{
  protected:
    AdaptiveWindowTest() : core_(params_, reg_)
    {
        config_.secureMode = DefenseMode::InvisiSpecSpectre;
        config_.secureWindowInsts = 1000;
    }

    CoreParams params_;
    CounterRegistry reg_;
    O3Core core_;
    AdaptiveConfig config_;
};

} // anonymous namespace

TEST_F(AdaptiveWindowTest, ArmsOnDetectionAndSwitchesMode)
{
    AdaptiveController ctrl(core_, config_);
    EXPECT_FALSE(ctrl.secureActive());
    EXPECT_EQ(core_.defenseMode(), DefenseMode::None);

    ctrl.onDetection(500);
    EXPECT_TRUE(ctrl.secureActive());
    EXPECT_EQ(core_.defenseMode(), DefenseMode::InvisiSpecSpectre);
    EXPECT_EQ(ctrl.activations(), 1u);
}

TEST_F(AdaptiveWindowTest, StaysArmedStrictlyInsideWindow)
{
    AdaptiveController ctrl(core_, config_);
    ctrl.onDetection(500); // window covers [500, 1500)

    ctrl.tick(1499);
    EXPECT_TRUE(ctrl.secureActive());
    EXPECT_EQ(core_.defenseMode(), DefenseMode::InvisiSpecSpectre);
    EXPECT_EQ(ctrl.secureInsts(), 0u) << "dwell counted early";
}

TEST_F(AdaptiveWindowTest, ExpiresExactlyAtWindowEdge)
{
    AdaptiveController ctrl(core_, config_);
    ctrl.onDetection(500);

    ctrl.tick(1500); // inst_count >= secureUntil_: boundary expires
    EXPECT_FALSE(ctrl.secureActive());
    EXPECT_EQ(core_.defenseMode(), DefenseMode::None);
    EXPECT_EQ(ctrl.secureInsts(), 1000u);
}

TEST_F(AdaptiveWindowTest, OverlappingFlagsExtendWithoutRearming)
{
    AdaptiveController ctrl(core_, config_);
    ctrl.onDetection(500);
    ctrl.tick(900);
    ctrl.onDetection(1200); // still armed: extends to 2200
    EXPECT_EQ(ctrl.activations(), 1u)
        << "overlapping flag must not count as a new activation";

    ctrl.tick(1500); // old edge: must NOT expire any more
    EXPECT_TRUE(ctrl.secureActive());
    ctrl.tick(2200);
    EXPECT_FALSE(ctrl.secureActive());
    // Dwell spans first flag to final expiry: 500 -> 2200.
    EXPECT_EQ(ctrl.secureInsts(), 1700u);
}

TEST_F(AdaptiveWindowTest, RearmsAfterExpiry)
{
    AdaptiveController ctrl(core_, config_);
    ctrl.onDetection(500);
    ctrl.tick(1500);
    EXPECT_FALSE(ctrl.secureActive());

    ctrl.onDetection(5000); // fresh flag after expiry: new episode
    EXPECT_TRUE(ctrl.secureActive());
    EXPECT_EQ(ctrl.activations(), 2u);
    EXPECT_EQ(core_.defenseMode(), DefenseMode::InvisiSpecSpectre);
    ctrl.tick(6000);
    EXPECT_FALSE(ctrl.secureActive());
    EXPECT_EQ(ctrl.secureInsts(), 2000u);
}

TEST_F(AdaptiveWindowTest, FlagAtZeroInstructionsArms)
{
    // A detection at inst_count 0 must still arm: the controller
    // encodes "inactive" as secureUntil_ == 0, and 0 + window > 0
    // keeps the two states distinguishable.
    AdaptiveController ctrl(core_, config_);
    ctrl.onDetection(0);
    EXPECT_TRUE(ctrl.secureActive());
    ctrl.tick(999);
    EXPECT_TRUE(ctrl.secureActive());
    ctrl.tick(1000);
    EXPECT_FALSE(ctrl.secureActive());
    EXPECT_EQ(ctrl.secureInsts(), 1000u);
}
