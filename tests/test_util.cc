/**
 * @file
 * Unit tests for util: RNG determinism and distributions, running
 * stats, histograms, confusion counts, tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/csv.hh"
#include "util/rng.hh"
#include "util/statreg.hh"
#include "util/stats.hh"

namespace evax
{
namespace
{

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, DoubleIsUnitInterval)
{
    Rng r(3);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double d = r.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng r(11);
    RunningStat s;
    for (int i = 0; i < 50000; ++i)
        s.add(r.nextGaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.03);
    EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(5);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, SplitIsIndependent)
{
    Rng a(9);
    Rng c = a.split();
    EXPECT_NE(a.next(), c.next());
}

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(RunningStat, MergeMatchesCombined)
{
    RunningStat a, b, all;
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.nextGaussian() * 3 + 1;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(Histogram, BinningAndCdf)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    EXPECT_EQ(h.total(), 10u);
    for (size_t i = 0; i < 10; ++i)
        EXPECT_EQ(h.bin(i), 1u);
    EXPECT_NEAR(h.cdfAt(5.0), 0.5, 1e-12);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(99.0);
    EXPECT_EQ(h.bin(0), 1u);
    EXPECT_EQ(h.bin(3), 1u);
}

TEST(ConfusionCounts, Rates)
{
    ConfusionCounts c;
    for (int i = 0; i < 90; ++i)
        c.add(false, false); // TN
    for (int i = 0; i < 10; ++i)
        c.add(true, false); // FP
    for (int i = 0; i < 80; ++i)
        c.add(true, true); // TP
    for (int i = 0; i < 20; ++i)
        c.add(false, true); // FN
    EXPECT_NEAR(c.fpr(), 0.1, 1e-12);
    EXPECT_NEAR(c.tpr(), 0.8, 1e-12);
    EXPECT_NEAR(c.fnr(), 0.2, 1e-12);
    EXPECT_NEAR(c.accuracy(), 170.0 / 200.0, 1e-12);
}

TEST(VectorStats, MeanStdGeomeanPercentile)
{
    std::vector<double> v{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(mean(v), 3.0);
    EXPECT_NEAR(stddev(v), std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(geomean({1, 100}), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
}

TEST(Table, PrintAndCsv)
{
    Table t({"name", "value"});
    t.addRow({"alpha", Table::fmt(1.5)});
    t.addRow({"beta", Table::pct(0.25)});
    std::ostringstream os;
    t.print(os, "demo");
    EXPECT_NE(os.str().find("alpha"), std::string::npos);
    EXPECT_NE(os.str().find("25.00%"), std::string::npos);

    std::ostringstream csv;
    t.writeCsv(csv);
    EXPECT_NE(csv.str().find("name,value"), std::string::npos);
}

TEST(Table, CsvQuoting)
{
    Table t({"a"});
    t.addRow({"x,y\"z"});
    std::ostringstream csv;
    t.writeCsv(csv);
    EXPECT_NE(csv.str().find("\"x,y\"\"z\""), std::string::npos);
}

TEST(StatRegistry, DuplicateDottedPathIsOneStat)
{
    StatRegistry sr;
    sr.scalar("sim.commit.insts").set(5);
    // Re-registering the same dotted path returns the same stat:
    // the value persists and no second entry appears.
    Stat<uint64_t> &again = sr.scalar("sim.commit.insts");
    EXPECT_EQ(again.value(), 5u);
    again.set(7);
    EXPECT_EQ(sr.scalar("sim.commit.insts").value(), 7u);
    EXPECT_EQ(sr.size(), 1u);
}

TEST(StatRegistry, LateDescriptionFillsEmptySlot)
{
    StatRegistry sr;
    sr.scalar("a.b");
    Stat<uint64_t> &s = sr.scalar("a.b", "described later");
    EXPECT_EQ(s.desc(), "described later");
    // A second description never overwrites the first.
    EXPECT_EQ(sr.scalar("a.b", "ignored").desc(),
              "described later");
}

TEST(StatRegistryDeathTest, KindMismatchOnSamePathIsFatal)
{
    StatRegistry sr;
    sr.scalar("typed.path");
    EXPECT_DEATH(sr.number("typed.path"), "different kind");
}

TEST(StatRegistry, JsonDumpEscapesAwkwardPaths)
{
    StatRegistry sr;
    sr.setScalar("plain.path", 1);
    sr.setScalar("odd\"quote", 2);
    sr.setScalar("back\\slash", 3);
    sr.setScalar("tab\there", 4);
    std::ostringstream os;
    sr.dumpStats(os, StatsFormat::Json);
    std::string j = os.str();
    EXPECT_NE(j.find("\"odd\\\"quote\""), std::string::npos);
    EXPECT_NE(j.find("\"back\\\\slash\""), std::string::npos);
    EXPECT_NE(j.find("\"tab\\there\""), std::string::npos);
    // No raw control characters or naked quotes may survive.
    EXPECT_EQ(j.find('\t'), std::string::npos);
}

TEST(StatRegistry, DumpIsSortedByDottedPath)
{
    StatRegistry sr;
    sr.setScalar("z.last", 1);
    sr.setScalar("a.first", 2);
    sr.setScalar("m.middle", 3);
    std::ostringstream os;
    sr.dumpStats(os, StatsFormat::Text);
    std::string t = os.str();
    size_t a = t.find("a.first");
    size_t m = t.find("m.middle");
    size_t z = t.find("z.last");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(m, std::string::npos);
    ASSERT_NE(z, std::string::npos);
    EXPECT_LT(a, m);
    EXPECT_LT(m, z);
}

TEST(ParseCsv, QuotedFieldKeepsComma)
{
    auto rows = parseCsv("name,desc\nfoo,\"a, b\"\n");
    ASSERT_EQ(rows.size(), 2u);
    ASSERT_EQ(rows[1].size(), 2u);
    EXPECT_EQ(rows[1][0], "foo");
    EXPECT_EQ(rows[1][1], "a, b");
}

TEST(ParseCsv, CrlfRecordsParseLikeLf)
{
    auto crlf = parseCsv("a,b\r\n1,2\r\n");
    auto lf = parseCsv("a,b\n1,2\n");
    EXPECT_EQ(crlf, lf);
    ASSERT_EQ(crlf.size(), 2u);
    EXPECT_EQ(crlf[1][1], "2");
}

TEST(ParseCsv, TrailingNewlineAddsNoRecord)
{
    EXPECT_EQ(parseCsv("a,b\n1,2").size(), 2u);
    EXPECT_EQ(parseCsv("a,b\n1,2\n").size(), 2u);
    EXPECT_EQ(parseCsv("a,b\n1,2\r\n").size(), 2u);
}

TEST(ParseCsv, EmptyAndEscapedFields)
{
    auto rows = parseCsv("x,,z\n\"he said \"\"hi\"\"\",\"\"\n");
    ASSERT_EQ(rows.size(), 2u);
    ASSERT_EQ(rows[0].size(), 3u);
    EXPECT_EQ(rows[0][1], "");
    ASSERT_EQ(rows[1].size(), 2u);
    EXPECT_EQ(rows[1][0], "he said \"hi\"");
    EXPECT_EQ(rows[1][1], "");
}

TEST(ParseCsv, QuotedFieldKeepsEmbeddedNewline)
{
    auto rows = parseCsv("\"two\nlines\",tail\n");
    ASSERT_EQ(rows.size(), 1u);
    ASSERT_EQ(rows[0].size(), 2u);
    EXPECT_EQ(rows[0][0], "two\nlines");
    EXPECT_EQ(rows[0][1], "tail");
}

TEST(ParseCsv, RoundTripsTableOutput)
{
    Table t({"name", "value"});
    t.addRow({"plain", "1"});
    t.addRow({"comma, inside", "quote \" inside"});
    std::ostringstream os;
    t.writeCsv(os);
    auto rows = parseCsv(os.str());
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0], t.header());
    EXPECT_EQ(rows[1], t.rows()[0]);
    EXPECT_EQ(rows[2], t.rows()[1]);
}

} // anonymous namespace
} // namespace evax
