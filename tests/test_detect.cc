/**
 * @file
 * Detector and defense-layer tests: PerSpectron/EVAX views,
 * feature engineering from the Generator, adaptive controller
 * state machine.
 */

#include <gtest/gtest.h>

#include "defense/adaptive.hh"
#include "detect/evax_detector.hh"
#include "detect/feature_engineer.hh"
#include "detect/perspectron.hh"
#include "util/stats.hh"

namespace evax
{
namespace
{

Dataset
syntheticCorpus(size_t n, uint64_t seed)
{
    // Attacks fire a block of the extended (security) features plus
    // some of the common ones; benign only the common ones.
    Dataset data;
    data.classNames = {"benign", "attack"};
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
        Sample s;
        s.malicious = i % 2 == 0;
        s.attackClass = s.malicious ? 1 : 0;
        s.x.assign(FeatureCatalog::numBase, 0.0);
        for (size_t f = 0; f < 40; ++f)
            s.x[f] = rng.nextDouble() * 0.5;
        if (s.malicious) {
            for (size_t f = 110; f < 130; ++f)
                s.x[f] = 0.5 + 0.5 * rng.nextDouble();
        }
        data.add(std::move(s));
    }
    return data;
}

TEST(PerSpectron, SeesOnly106Features)
{
    PerSpectron det;
    EXPECT_EQ(det.model().numFeatures(),
              FeatureCatalog::numPerSpectron);
}

TEST(PerSpectron, BlindToExtendedFeatureAttack)
{
    // The synthetic attack signature lives in features 110-129,
    // invisible to PerSpectron: its accuracy stays near chance
    // while EVAX separates perfectly.
    Dataset data = syntheticCorpus(600, 3);
    Rng rng(5);

    PerSpectron persp;
    persp.train(data, 15, rng);
    EvaxDetector evax;
    evax.train(data, 15, rng);

    ConfusionCounts cp, ce;
    for (const auto &s : data.samples) {
        cp.add(persp.score(s.x) >= 0, s.malicious);
        ce.add(evax.score(s.x) >= 0, s.malicious);
    }
    EXPECT_LT(cp.accuracy(), 0.7);
    EXPECT_GT(ce.accuracy(), 0.95);
}

TEST(EvaxDetector, ExpandAppendsEngineered)
{
    EvaxDetector det;
    std::vector<double> base(FeatureCatalog::numBase, 0.5);
    auto x = det.expand(base);
    EXPECT_EQ(x.size(), FeatureCatalog::numEvax);
    for (size_t i = FeatureCatalog::numBase; i < x.size(); ++i)
        EXPECT_DOUBLE_EQ(x[i], 0.5); // min(0.5, 0.5)
}

TEST(EvaxDetector, CustomEngineeredSet)
{
    std::vector<EngineeredFeature> eng = {
        {"t.a", FeatureCatalog::baseFeatures()[0],
         FeatureCatalog::baseFeatures()[1]},
    };
    EvaxDetector det(eng);
    std::vector<double> base(FeatureCatalog::numBase, 0.0);
    base[0] = 0.8;
    base[1] = 0.6;
    auto x = det.expand(base);
    EXPECT_EQ(x.size(), FeatureCatalog::numBase + 1);
    EXPECT_DOUBLE_EQ(x.back(), 0.6);
}

TEST(FeatureEngineer, MinesRequestedCount)
{
    AmGanConfig cfg;
    cfg.featureDim = FeatureCatalog::numBase;
    cfg.numClasses = 2;
    cfg.genHidden = {32, 24};
    cfg.discHidden = {8};
    AmGan gan(cfg);
    FeatureEngineer engineer(12);
    auto mined = engineer.mine(gan);
    EXPECT_EQ(mined.size(), 12u);
    for (const auto &e : mined) {
        EXPECT_NE(e.a, e.b);
        // sources must be valid base features
        FeatureCatalog::baseIndex(e.a);
        FeatureCatalog::baseIndex(e.b);
    }
}

TEST(FeatureEngineer, RanksByWeightMass)
{
    AmGanConfig cfg;
    cfg.featureDim = FeatureCatalog::numBase;
    cfg.numClasses = 2;
    cfg.genHidden = {16};
    cfg.discHidden = {8};
    AmGan gan(cfg);
    // Hand-amplify hidden node 3's outgoing weights.
    DenseLayer &out =
        gan.generator().layer(gan.generator().numLayers() - 1);
    for (size_t o = 0; o < out.outSize; ++o)
        out.w[o * out.inSize + 3] = 10.0;
    auto rank = FeatureEngineer::rankHiddenNodes(gan);
    EXPECT_EQ(rank.front().first, 3u);
}

TEST(AdaptiveController, ArmsAndExpires)
{
    CoreParams params;
    CounterRegistry reg;
    O3Core core(params, reg);
    AdaptiveConfig cfg;
    cfg.secureMode = DefenseMode::FenceFuturistic;
    cfg.secureWindowInsts = 1000;
    AdaptiveController ctl(core, cfg);

    EXPECT_EQ(core.defenseMode(), DefenseMode::None);
    ctl.onDetection(100);
    EXPECT_EQ(core.defenseMode(), DefenseMode::FenceFuturistic);
    EXPECT_TRUE(ctl.secureActive());

    ctl.tick(900); // still inside the window
    EXPECT_EQ(core.defenseMode(), DefenseMode::FenceFuturistic);

    ctl.tick(1101); // expired
    EXPECT_EQ(core.defenseMode(), DefenseMode::None);
    EXPECT_FALSE(ctl.secureActive());
    EXPECT_EQ(ctl.activations(), 1u);
    EXPECT_GE(ctl.secureInsts(), 1000u);
}

TEST(AdaptiveController, ReDetectionExtendsWindow)
{
    CoreParams params;
    CounterRegistry reg;
    O3Core core(params, reg);
    AdaptiveConfig cfg;
    cfg.secureWindowInsts = 1000;
    AdaptiveController ctl(core, cfg);

    ctl.onDetection(0);
    ctl.onDetection(800); // re-arm
    ctl.tick(1500);       // original window would have expired
    EXPECT_NE(core.defenseMode(), DefenseMode::None);
    ctl.tick(1801);
    EXPECT_EQ(core.defenseMode(), DefenseMode::None);
    EXPECT_EQ(ctl.activations(), 1u); // one continuous episode
}

} // anonymous namespace
} // namespace evax
