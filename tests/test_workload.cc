/**
 * @file
 * Benign-kernel tests: every kernel runs, is deterministic,
 * resettable, and occupies a distinct region of behaviour space.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/core.hh"
#include "workload/registry.hh"

namespace evax
{
namespace
{

class EveryKernel : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryKernel, ProducesRequestedLength)
{
    auto wl = WorkloadRegistry::create(GetParam(), 3, 5000);
    MicroOp op;
    uint64_t n = 0;
    while (wl->next(op))
        ++n;
    EXPECT_GE(n, 5000u);
    EXPECT_LT(n, 5000u + 2000u); // refill granularity slack
}

TEST_P(EveryKernel, ResetReplaysIdentically)
{
    auto wl = WorkloadRegistry::create(GetParam(), 3, 2000);
    std::vector<Addr> first;
    MicroOp op;
    while (wl->next(op))
        first.push_back(op.addr ^ op.pc);
    wl->reset();
    size_t i = 0;
    while (wl->next(op)) {
        ASSERT_LT(i, first.size());
        EXPECT_EQ(first[i], op.addr ^ op.pc);
        ++i;
    }
    EXPECT_EQ(i, first.size());
}

TEST_P(EveryKernel, NoLeaksAndReasonableIpc)
{
    CoreParams params;
    CounterRegistry reg;
    O3Core core(params, reg);
    auto wl = WorkloadRegistry::create(GetParam(), 7, 20000);
    SimResult res = core.run(*wl);
    EXPECT_EQ(res.leaks, 0u);
    EXPECT_GT(res.ipc(), 0.05);
    EXPECT_LT(res.ipc(), 8.0);
}

TEST_P(EveryKernel, DifferentSeedsDifferentTraces)
{
    auto a = WorkloadRegistry::create(GetParam(), 1, 2000);
    auto b = WorkloadRegistry::create(GetParam(), 2, 2000);
    MicroOp oa, ob;
    int diff = 0;
    for (int i = 0; i < 1000; ++i) {
        if (!a->next(oa) || !b->next(ob))
            break;
        diff += (oa.addr != ob.addr) ? 1 : 0;
    }
    // linalg/genematch are deterministic address-wise by design;
    // every kernel must at least run, most must differ.
    if (GetParam() != "linalg" && GetParam() != "genematch" &&
        GetParam() != "fft") {
        EXPECT_GT(diff, 0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, EveryKernel,
    ::testing::ValuesIn(WorkloadRegistry::names()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(WorkloadBehaviour, LinalgIsFpDense)
{
    CoreParams params;
    CounterRegistry reg;
    O3Core core(params, reg);
    auto wl = WorkloadRegistry::create("linalg", 3, 20000);
    core.run(*wl);
    double fp = reg.valueByName("iew.executedInsts");
    EXPECT_GT(fp, 0.0);
    // heavy loads + FP, almost no squashes
    EXPECT_LT(reg.valueByName("iew.branchMispredicts"), 200.0);
}

TEST(WorkloadBehaviour, SortMispredictsALot)
{
    CoreParams params;
    CounterRegistry reg;
    O3Core core(params, reg);
    auto wl = WorkloadRegistry::create("sort", 3, 20000);
    core.run(*wl);
    double rate = reg.valueByName("bp.condIncorrect") /
                  reg.valueByName("bp.lookups");
    EXPECT_GT(rate, 0.1);
}

TEST(WorkloadBehaviour, PointerChaseIsMemoryBound)
{
    CoreParams params;
    CounterRegistry reg;
    O3Core core(params, reg);
    auto wl = WorkloadRegistry::create("pointerchase", 3, 20000);
    SimResult res = core.run(*wl);
    EXPECT_LT(res.ipc(), 0.6);
    EXPECT_GT(reg.valueByName("dram.readBursts"), 500.0);
}

TEST(WorkloadBehaviour, KernelsHaveDistinctFootprints)
{
    // IPC across kernels must span a real range (diverse corpus).
    double lo = 1e9, hi = 0;
    for (const auto &name : WorkloadRegistry::names()) {
        CoreParams params;
        CounterRegistry reg;
        O3Core core(params, reg);
        auto wl = WorkloadRegistry::create(name, 3, 10000);
        double ipc = core.run(*wl).ipc();
        lo = std::min(lo, ipc);
        hi = std::max(hi, ipc);
    }
    EXPECT_GT(hi / lo, 3.0)
        << "behaviour space too narrow: " << lo << ".." << hi;
}

TEST(WorkloadBehaviour, OsNoiseInjectsSyscalls)
{
    CoreParams params;
    CounterRegistry reg;
    O3Core core(params, reg);
    auto wl = WorkloadRegistry::create("compress", 3, 40000);
    core.run(*wl);
    EXPECT_GT(reg.valueByName("sys.syscalls"), 0.0)
        << "full-system noise floor must be present";
}

TEST(WorkloadRegistryDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(WorkloadRegistry::create("no-such-kernel", 1, 100),
                ::testing::ExitedWithCode(1),
                "unknown workload: no-such-kernel");
}

TEST(WorkloadRegistryDeathTest, DuplicateRegistrationIsFatal)
{
    EXPECT_EXIT(WorkloadRegistry::registerKernel(
                    "compress",
                    [](uint64_t seed, uint64_t length) {
                        return WorkloadRegistry::create("compress",
                                                        seed, length);
                    }),
                ::testing::ExitedWithCode(1),
                "duplicate workload registration: compress");
}

TEST(WorkloadRegistryDeathTest, EmptyFactoryIsFatal)
{
    EXPECT_EXIT(WorkloadRegistry::registerKernel("hollow", nullptr),
                ::testing::ExitedWithCode(1),
                "empty factory for workload: hollow");
}

TEST(WorkloadRegistryExtras, RegisteredKernelResolves)
{
    ASSERT_FALSE(WorkloadRegistry::isRegistered("compress-twin"));
    WorkloadRegistry::registerKernel(
        "compress-twin", [](uint64_t seed, uint64_t length) {
            return WorkloadRegistry::create("compress", seed, length);
        });
    EXPECT_TRUE(WorkloadRegistry::isRegistered("compress-twin"));
    const auto all = WorkloadRegistry::names();
    EXPECT_NE(std::find(all.begin(), all.end(), "compress-twin"),
              all.end());

    auto wl = WorkloadRegistry::create("compress-twin", 3, 2000);
    MicroOp op;
    uint64_t n = 0;
    while (wl->next(op))
        ++n;
    EXPECT_GE(n, 2000u);

    // Registering the same extra twice must also be rejected.
    EXPECT_EXIT(WorkloadRegistry::registerKernel(
                    "compress-twin",
                    [](uint64_t seed, uint64_t length) {
                        return WorkloadRegistry::create("compress",
                                                        seed, length);
                    }),
                ::testing::ExitedWithCode(1),
                "duplicate workload registration: compress-twin");
}

} // anonymous namespace
} // namespace evax
