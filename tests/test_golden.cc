/**
 * @file
 * Pinned golden digests for every figure bench's CSV-producing
 * computation, at test scale. The full-size figure CSVs are
 * regenerated (not committed), so these digests are the tripwire
 * that keeps hot-path work semantics-preserving: each test runs a
 * shrunken version of one bench's pipeline and compares a bit-exact
 * FNV-1a digest of the numbers that feed its CSV rows against a
 * pinned constant. Any change to simulator counters, sampler
 * windows, detector scores or training — however small — moves at
 * least one digest.
 *
 * Figure 19's K-fold digest is pinned in test_integration.cc
 * (GoldenSeeds.KfoldMetricsDigestIsPinned); everything else is
 * here.
 *
 * When a digest moves *intentionally* (a semantic change to the
 * simulator or models), re-pin it and say so in the commit message;
 * the figure CSVs must be re-baselined in the same PR.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <iomanip>
#include <sstream>

#include "arena/tournament.hh"
#include "attacks/registry.hh"
#include "core/endtoend.hh"
#include "core/experiment.hh"
#include "core/kfold.hh"
#include "core/vaccination.hh"
#include "detect/evax_detector.hh"
#include "detect/perspectron.hh"
#include "hpc/features.hh"
#include "ml/metrics.hh"
#include "ml/mlp.hh"
#include "sim/core.hh"
#include "util/stats.hh"
#include "workload/registry.hh"

namespace evax
{
namespace
{

/** FNV-1a over a stream of doubles (bit-exact, not approximate). */
uint64_t
hashDoubles(uint64_t h, const double *v, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        uint64_t bits;
        std::memcpy(&bits, &v[i], sizeof(bits));
        for (int b = 0; b < 8; ++b) {
            h ^= (bits >> (8 * b)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }
    return h;
}

uint64_t
hashU64(uint64_t h, uint64_t bits)
{
    for (int b = 0; b < 8; ++b) {
        h ^= (bits >> (8 * b)) & 0xff;
        h *= 0x100000001b3ULL;
    }
    return h;
}

constexpr uint64_t kFnvSeed = 0xcbf29ce484222325ULL;

uint64_t
hashDouble(uint64_t h, double v)
{
    return hashDoubles(h, &v, 1);
}

/** FNV-1a over a byte string (CSV-text digests). */
uint64_t
hashBytes(const std::string &bytes)
{
    uint64_t h = kFnvSeed;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Digest a SimResult's externally visible fields. */
uint64_t
hashSimResult(uint64_t h, const SimResult &r)
{
    h = hashU64(h, r.cycles);
    h = hashU64(h, r.committedInsts);
    h = hashU64(h, r.leaks);
    h = hashU64(h, r.firstLeakInst);
    h = hashU64(h, r.bitFlips);
    h = hashU64(h, r.squashes);
    h = hashU64(h, r.streamExhausted ? 1 : 0);
    return h;
}

uint64_t
datasetDigest(const Dataset &data)
{
    uint64_t h = kFnvSeed;
    for (const auto &s : data.samples) {
        h = hashDoubles(h, s.x.data(), s.x.size());
        h ^= (uint64_t)s.attackClass * 0x9e3779b97f4a7c15ULL;
        h ^= s.malicious ? 0x5bULL : 0xa4ULL;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** EXPECT with a hex print so re-pinning is copy-paste. */
void
expectDigest(uint64_t actual, uint64_t pinned, const char *label)
{
    EXPECT_EQ(actual, pinned)
        << label << " digest moved: actual 0x" << std::hex << actual
        << " (pinned 0x" << pinned << ")";
}

/**
 * The quick-scale experiment every detector-level golden shares
 * (corpus + profile + trained PerSpectron and EVAX detectors).
 * Built once; tests must not mutate it.
 */
const ExperimentSetup &
sharedSetup()
{
    static const ExperimentSetup setup =
        buildExperiment(ExperimentScale::quick(), 42);
    return setup;
}

const Dataset &
quickCorpus()
{
    return sharedSetup().corpus;
}

// ---------------------------------------------------------------
// Core-level digests: the most direct tripwire for tick-loop work.
// Every stream x defense-mode combination digests the full counter
// register file plus the SimResult, so a single extra or missing
// counter increment anywhere in the pipeline moves it.
// ---------------------------------------------------------------

uint64_t
coreRunDigest(const std::string &stream_name, bool is_attack,
              DefenseMode mode)
{
    CounterRegistry reg;
    CoreParams params; // O3Core keeps a reference; must outlive it
    O3Core core(params, reg);
    core.setDefenseMode(mode);
    Sampler sampler(reg, 1000);
    sampler.setNormalizeEnabled(false);
    core.attachSampler(&sampler);
    auto stream = is_attack
                      ? AttackRegistry::create(stream_name, 3, 6000)
                      : WorkloadRegistry::create(stream_name, 3,
                                                 6000);
    SimResult res = core.run(*stream);
    std::vector<double> snap = reg.snapshot();
    uint64_t h = hashDoubles(kFnvSeed, snap.data(), snap.size());
    h = hashSimResult(h, res);
    h = hashU64(h, sampler.windowsClosed());
    return h;
}

struct CoreCase
{
    const char *stream;
    bool attack;
    DefenseMode mode;
    uint64_t pinned;
};

TEST(GoldenCore, CounterDigestsBenignStreams)
{
    const CoreCase cases[] = {
        {"compress", false, DefenseMode::None, 0x6b84392a76f46220ULL},
        {"fft", false, DefenseMode::None, 0xa7156221cc8bec08ULL},
        {"linalg", false, DefenseMode::None, 0x55d3709835d2b8f8ULL},
        {"eventsim", false, DefenseMode::None, 0x88da3a8a882f5bd8ULL},
        {"sort", false, DefenseMode::None, 0x55e4be3da17fde88ULL},
    };
    for (const auto &c : cases) {
        expectDigest(coreRunDigest(c.stream, c.attack, c.mode),
                     c.pinned, c.stream);
    }
}

TEST(GoldenCore, CounterDigestsAttackStreams)
{
    const CoreCase cases[] = {
        {"spectre-pht", true, DefenseMode::None, 0x828d0b846d7baa20ULL},
        {"spectre-stl", true, DefenseMode::None, 0x56c7208d509cc5d2ULL},
        {"meltdown", true, DefenseMode::None, 0x6906cd11ab964df7ULL},
        {"lvi", true, DefenseMode::None, 0x7077dffbc0289e39ULL},
        {"rowhammer", true, DefenseMode::None, 0x6dc0e0138d1984caULL},
        {"smotherspectre", true, DefenseMode::None, 0x555b4d343d0260c5ULL},
        {"flush-reload", true, DefenseMode::None, 0xbd0d4bda7f0f5359ULL},
        {"medusa-shadow-rep", true, DefenseMode::None, 0xeea05e9305907f83ULL},
    };
    for (const auto &c : cases) {
        expectDigest(coreRunDigest(c.stream, c.attack, c.mode),
                     c.pinned, c.stream);
    }
}

TEST(GoldenCore, CounterDigestsDefenseModes)
{
    const CoreCase cases[] = {
        {"compress", false, DefenseMode::FenceSpectre, 0xf49a9e7110b0f661ULL},
        {"compress", false, DefenseMode::FenceFuturistic, 0x140e6b1e8ac1ccc1ULL},
        {"compress", false, DefenseMode::InvisiSpecSpectre, 0xc07b4475b3f6f794ULL},
        {"compress", false, DefenseMode::InvisiSpecFuturistic,
         0xfdd1eb1b4575ec67ULL},
        {"spectre-pht", true, DefenseMode::FenceSpectre, 0x2028aa15c60c5479ULL},
        {"spectre-pht", true, DefenseMode::FenceFuturistic, 0x126daac6865fb9e0ULL},
        {"spectre-pht", true, DefenseMode::InvisiSpecSpectre,
         0x1153b060c17663feULL},
        {"spectre-pht", true, DefenseMode::InvisiSpecFuturistic,
         0x8cfd36e8c984787eULL},
        {"meltdown", true, DefenseMode::InvisiSpecFuturistic,
         0x5769607e58486f7bULL},
    };
    for (const auto &c : cases) {
        std::string label = std::string(c.stream) + "/mode" +
                            std::to_string((int)c.mode);
        expectDigest(coreRunDigest(c.stream, c.attack, c.mode),
                     c.pinned, label.c_str());
    }
}

/** The fig15 third-row configuration: 100-instruction sampling. */
TEST(GoldenCore, Interval100CorpusDigest)
{
    CollectorConfig cfg;
    cfg.sampleInterval = 100;
    cfg.benignLength = 5000;
    cfg.attackLength = 4000;
    cfg.benignSeeds = 1;
    cfg.attackSeeds = 1;
    Collector collector(cfg);
    Dataset data;
    data.classNames = AttackRegistry::classNames();
    auto wl = WorkloadRegistry::create("compress", 11, 5000);
    collector.collectStream(*wl, BENIGN_CLASS, false, data);
    auto atk = AttackRegistry::create("spectre-stl", 13, 4000);
    collector.collectStream(*atk, AttackRegistry::classId(
                                      "spectre-stl"),
                            true, data);
    expectDigest(datasetDigest(data), 0xb2dcf17c5a982463ULL, "interval100corpus");
}

// ---------------------------------------------------------------
// Figure-level digests (shrunken pipelines, same code paths).
// ---------------------------------------------------------------

/** Figure 7: AM-GAN style/disc/gen loss per epoch. */
TEST(GoldenFigures, Fig07StyleLossDigest)
{
    ExperimentScale scale = ExperimentScale::quick();
    Dataset corpus = quickCorpus(); // already normalized
    Vaccinator vaccinator(scale.vaccination);
    VaccinationResult vr = vaccinator.run(corpus);
    ASSERT_FALSE(vr.styleLossHistory.empty());
    uint64_t h = hashDoubles(kFnvSeed, vr.styleLossHistory.data(),
                             vr.styleLossHistory.size());
    for (const auto &l : vr.lossHistory) {
        h = hashDouble(h, l.discLoss);
        h = hashDouble(h, l.genLoss);
    }
    expectDigest(h, 0xee8ce1cf8954431fULL, "fig07");
}

/** Figure 14: per-policy IPC on benign kernels. */
TEST(GoldenFigures, Fig14IpcDigest)
{
    const ExperimentSetup &setup = sharedSetup();
    constexpr uint64_t run_len = 12000;
    uint64_t h = kFnvSeed;
    for (const char *name : {"compress", "fft"}) {
        auto mk = [&] {
            return WorkloadRegistry::create(name, 5, run_len);
        };
        h = hashDouble(h,
                       runPlain(*mk(), DefenseMode::None).ipc());
        h = hashDouble(
            h, runPlain(*mk(), DefenseMode::InvisiSpecSpectre)
                   .ipc());

        GatedRunConfig cfg;
        cfg.profile = setup.profile;
        cfg.adaptive.secureMode = DefenseMode::InvisiSpecSpectre;
        cfg.adaptive.secureWindowInsts = 100000;
        h = hashDouble(h, runGated(*mk(), *setup.perspectron, cfg)
                              .sim.ipc());
        h = hashDouble(h,
                       runGated(*mk(), *setup.evax, cfg).sim.ipc());
        cfg.adaptive.secureMode = DefenseMode::FenceFuturistic;
        h = hashDouble(h,
                       runGated(*mk(), *setup.evax, cfg).sim.ipc());
    }
    expectDigest(h, 0x4c7fe64838ebc504ULL, "fig14");
}

/** Figure 15: per-window detector decisions (FP/FN study). */
TEST(GoldenFigures, Fig15WindowDecisionsDigest)
{
    const ExperimentSetup &setup = sharedSetup();
    GatedRunConfig cfg;
    cfg.profile = setup.profile;
    cfg.sampleInterval = 1000;

    uint64_t h = kFnvSeed;
    Detector *dets[2] = {setup.perspectron.get(),
                         setup.evax.get()};
    for (Detector *det : dets) {
        for (const char *name : {"compress", "eventsim"}) {
            auto wl = WorkloadRegistry::create(name, 31, 10000);
            for (bool d : windowDecisions(*wl, *det, cfg))
                h = hashU64(h, d ? 1 : 0);
        }
        for (const char *name : {"spectre-pht", "meltdown"}) {
            auto atk = AttackRegistry::create(name, 37, 8000);
            for (bool d : windowDecisions(*atk, *det, cfg))
                h = hashU64(h, d ? 1 : 0);
        }
    }
    expectDigest(h, 0xd1004cfaf7ad3085ULL, "fig15");
}

/** Figure 16: always-on vs gated overhead + gated security. */
TEST(GoldenFigures, Fig16OverheadDigest)
{
    const ExperimentSetup &setup = sharedSetup();
    constexpr uint64_t run_len = 12000;
    uint64_t h = kFnvSeed;
    for (DefenseMode mode : {DefenseMode::FenceSpectre,
                             DefenseMode::InvisiSpecSpectre}) {
        auto base_wl = WorkloadRegistry::create("compress", 5,
                                                run_len);
        h = hashDouble(h,
                       runPlain(*base_wl, DefenseMode::None).ipc());
        auto on_wl = WorkloadRegistry::create("compress", 5,
                                              run_len);
        h = hashDouble(h, runPlain(*on_wl, mode).ipc());

        GatedRunConfig cfg;
        cfg.profile = setup.profile;
        cfg.sampleInterval = 1000;
        cfg.adaptive.secureMode = mode;
        cfg.adaptive.secureWindowInsts = 1000000;
        auto gate_wl = WorkloadRegistry::create("compress", 5,
                                                run_len);
        GatedRunResult g = runGated(*gate_wl, *setup.evax, cfg);
        h = hashDouble(h, g.sim.ipc());
        h = hashDouble(h, g.flagRate());
    }
    // Security side: gated attacks must still be detected/stopped.
    for (const char *atk : {"spectre-pht", "meltdown"}) {
        GatedRunConfig cfg;
        cfg.profile = setup.profile;
        cfg.adaptive.secureMode = DefenseMode::InvisiSpecFuturistic;
        cfg.adaptive.secureWindowInsts = 1000000;
        auto a = AttackRegistry::create(atk, 17, 10000);
        GatedRunResult g = runGated(*a, *setup.evax, cfg);
        h = hashU64(h, g.flags);
        h = hashU64(h, g.windows);
        h = hashU64(h, g.sim.leaks);
        h = hashU64(h, g.activations);
        h = hashU64(h, g.secureInsts);
    }
    expectDigest(h, 0x54bc6adc1cb3a493ULL, "fig16");
}

/** Figure 17: detector scores + ROC on fuzzer-generated attacks. */
TEST(GoldenFigures, Fig17RocDigest)
{
    const ExperimentSetup &setup = sharedSetup();
    CollectorConfig ccfg = ExperimentScale::quick().collector;
    Collector collector(ccfg);
    Dataset benign;
    benign.classNames = AttackRegistry::classNames();
    for (const char *name : {"compress", "fft"}) {
        auto wl = WorkloadRegistry::create(name, 71, 10000);
        collector.collectStream(*wl, BENIGN_CLASS, false, benign);
    }
    Collector::applyProfile(benign, setup.profile);

    AttackFuzzer fuzzer(FuzzTool::Transynther, 1000);
    Dataset evasive = collector.collectFuzzerSamples(fuzzer, 4,
                                                     8000);
    Collector::applyProfile(evasive, setup.profile);

    uint64_t h = kFnvSeed;
    const Detector *dets[2] = {setup.perspectron.get(),
                               setup.evax.get()};
    for (const Detector *det : dets) {
        std::vector<double> scores;
        std::vector<bool> labels;
        for (const auto &s : evasive.samples) {
            scores.push_back(det->score(s.x));
            labels.push_back(true);
        }
        for (const auto &s : benign.samples) {
            scores.push_back(det->score(s.x));
            labels.push_back(false);
        }
        h = hashDoubles(h, scores.data(), scores.size());
        h = hashDouble(h, rocAuc(scores, labels));
    }
    expectDigest(h, 0xbaec5a31e9afb76dULL, "fig17");
}

/** Figure 18: detector scores across the feasible AML plane. */
TEST(GoldenFigures, Fig18AmlDigest)
{
    const ExperimentSetup &setup = sharedSetup();
    const Dataset &corpus = quickCorpus();

    std::vector<const Sample *> attacks;
    std::vector<double> benign_mean(FeatureCatalog::numBase, 0.0);
    size_t benign_count = 0;
    for (const auto &s : corpus.samples) {
        if (s.malicious) {
            if (attacks.size() < 5)
                attacks.push_back(&s);
        } else {
            for (size_t i = 0;
                 i < benign_mean.size() && i < s.x.size(); ++i)
                benign_mean[i] += s.x[i];
            ++benign_count;
        }
    }
    ASSERT_GE(attacks.size(), 1u);
    ASSERT_GE(benign_count, 1u);
    for (auto &v : benign_mean)
        v /= (double)benign_count;

    uint64_t h = kFnvSeed;
    std::vector<double> adv;
    for (const Sample *s : attacks) {
        adv.assign(s->x.size(), 0.0);
        for (double alpha = 1.0; alpha >= 0.4 - 1e-9;
             alpha -= 0.2) {
            for (double beta = 0.0; beta <= 0.6 + 1e-9;
                 beta += 0.2) {
                for (size_t i = 0; i < adv.size(); ++i) {
                    double b = i < benign_mean.size()
                                   ? benign_mean[i]
                                   : 0.0;
                    adv[i] = std::min(1.0,
                                      alpha * s->x[i] + beta * b);
                }
                h = hashDouble(h, setup.evax->score(adv));
                h = hashU64(h, setup.evax->flag(adv) ? 1 : 0);
                h = hashDouble(h, setup.perspectron->score(adv));
            }
        }
    }
    expectDigest(h, 0xbb856f82171fd483ULL, "fig18");
}

/** Figure 20: MLP detector accuracy, traditional vs augmented. */
TEST(GoldenFigures, Fig20DnnDigest)
{
    Dataset corpus = quickCorpus();
    Rng rng(2024);
    corpus.shuffle(rng);
    Dataset train, test;
    corpus.split(0.7, train, test);
    ASSERT_FALSE(train.samples.empty());
    ASSERT_FALSE(test.samples.empty());

    std::vector<size_t> sizes{train.samples.front().x.size(), 24,
                              1};
    Mlp net(sizes, Activation::Relu, Activation::Sigmoid, 11);
    Rng order_rng(11 * 31 + 7);
    std::vector<size_t> order(train.samples.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    for (unsigned e = 0; e < 3; ++e) {
        order_rng.shuffle(order);
        for (size_t idx : order) {
            const Sample &s = train.samples[idx];
            net.trainBce(s.x, s.malicious ? 1.0 : 0.0, 5e-4);
        }
    }
    std::vector<double> scores;
    std::vector<bool> labels;
    for (const auto &s : test.samples) {
        scores.push_back(net.forward(s.x)[0]);
        labels.push_back(s.malicious);
    }
    uint64_t h = hashDoubles(kFnvSeed, scores.data(),
                             scores.size());
    h = hashDouble(h, accuracyAt(scores, labels, 0.5));
    expectDigest(h, 0x2e68bf4c36e47c26ULL, "fig20");
}

/** Table I: engineered-feature separations over the corpus. */
TEST(GoldenFigures, Tab1EngineeredSeparationDigest)
{
    const Dataset &corpus = quickCorpus();
    uint64_t h = kFnvSeed;
    for (const auto &e : FeatureCatalog::engineered()) {
        RunningStat atk, ben;
        std::vector<EngineeredFeature> one{e};
        for (const auto &s : corpus.samples) {
            double v =
                FeatureCatalog::computeEngineered(s.x, one)[0];
            (s.malicious ? atk : ben).add(v);
        }
        h = hashDouble(h, atk.mean());
        h = hashDouble(h, ben.mean());
    }
    expectDigest(h, 0xe4a9670ae016d952ULL, "tab1");
}

/** Zero-day table: one leave-one-attack-out fold end to end. */
TEST(GoldenFigures, ZerodayFoldDigest)
{
    ExperimentScale scale = ExperimentScale::quick();
    Dataset corpus = quickCorpus();

    int cls = AttackRegistry::classId("flush-conflict");
    Rng rng(51);
    Dataset train, test;
    corpus.leaveOneAttackOut(cls, 0.2, rng, train, test);

    PerSpectron persp(7);
    trainTraditional(persp, train, scale.trainEpochs, scale.maxFpr,
                     rng);
    persp.tuneSensitivity(train, 0.05);

    uint64_t h = kFnvSeed;
    ConfusionCounts cm;
    for (const auto &s : test.samples) {
        if (s.attackClass == cls && s.malicious)
            cm.add(persp.flag(s.x), true);
    }
    h = hashDouble(h, cm.tpr());
    for (const auto &s : test.samples)
        h = hashDouble(h, persp.score(s.x));
    expectDigest(h, 0xbd28ae52ac6581f4ULL, "zeroday");
}

/** Arms-race arena: one-round tournament round-log CSV bytes. */
TEST(GoldenFigures, ArenaRoundCsvDigest)
{
    // The whole arena pipeline in one digest — corpus, ensemble
    // training, evasion search (all three strategies), diff-oracle
    // confirmation, harvest, vaccination retraining, recovery
    // re-scoring — hashed as the literal CSV bytes the round log
    // renders to. tests/test_arena.cc pins the 2-round log and its
    // serial/threaded byte-identity; this smaller pin lives with
    // the other figure digests so a sim/detector change that moves
    // everything is caught in one suite.
    TournamentConfig cfg;
    cfg.rounds = 1;
    cfg.evasion.candidatesPerStrategy = 3;
    cfg.evasion.gradientIters = 2;
    Tournament tournament(cfg);
    TournamentResult result = tournament.run();
    expectDigest(hashBytes(result.roundLogCsv()),
                 0x4c63e95a5f031b61ULL, "arena");
}

/** Ablation: secure-window dwell sweep through the controller. */
TEST(GoldenFigures, AblationSecureWindowDigest)
{
    const ExperimentSetup &setup = sharedSetup();
    uint64_t h = kFnvSeed;
    for (uint64_t window : {10000ULL, 100000ULL}) {
        GatedRunConfig cfg;
        cfg.profile = setup.profile;
        cfg.adaptive.secureMode = DefenseMode::InvisiSpecSpectre;
        cfg.adaptive.secureWindowInsts = window;
        auto atk = AttackRegistry::create("spectre-pht", 23, 12000);
        GatedRunResult g = runGated(*atk, *setup.evax, cfg);
        h = hashSimResult(h, g.sim);
        h = hashU64(h, g.flags);
        h = hashU64(h, g.activations);
        h = hashU64(h, g.secureInsts);
    }
    expectDigest(h, 0xae45bad0374a8cddULL, "ablation");
}

} // anonymous namespace
} // namespace evax
