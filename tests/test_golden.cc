/**
 * @file
 * Pinned golden digests for every figure bench's CSV-producing
 * computation, at test scale. The full-size figure CSVs are
 * regenerated (not committed), so these digests are the tripwire
 * that keeps hot-path work semantics-preserving: each test runs a
 * shrunken version of one bench's pipeline and compares a bit-exact
 * FNV-1a digest of the numbers that feed its CSV rows against a
 * pinned constant. Any change to simulator counters, sampler
 * windows, detector scores or training — however small — moves at
 * least one digest.
 *
 * Figure 19's K-fold digest is pinned in test_integration.cc
 * (GoldenSeeds.KfoldMetricsDigestIsPinned); everything else is
 * here.
 *
 * When a digest moves *intentionally* (a semantic change to the
 * simulator or models), re-pin it and say so in the commit message;
 * the figure CSVs must be re-baselined in the same PR.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <iomanip>
#include <sstream>

#include "arena/tournament.hh"
#include "attacks/registry.hh"
#include "core/endtoend.hh"
#include "core/experiment.hh"
#include "core/kfold.hh"
#include "core/vaccination.hh"
#include "detect/evax_detector.hh"
#include "detect/perspectron.hh"
#include "hpc/features.hh"
#include "ml/metrics.hh"
#include "ml/mlp.hh"
#include "sim/core.hh"
#include "util/stats.hh"
#include "workload/registry.hh"

#include "golden_util.hh" // hashing + coreRunDigest + CoreCase list

namespace evax
{
namespace
{

/**
 * The quick-scale experiment every detector-level golden shares
 * (corpus + profile + trained PerSpectron and EVAX detectors).
 * Built once; tests must not mutate it.
 */
const ExperimentSetup &
sharedSetup()
{
    static const ExperimentSetup setup =
        buildExperiment(ExperimentScale::quick(), 42);
    return setup;
}

const Dataset &
quickCorpus()
{
    return sharedSetup().corpus;
}

// ---------------------------------------------------------------
// Core-level digests: the most direct tripwire for tick-loop work.
// Every stream x defense-mode combination digests the full counter
// register file plus the SimResult, so a single extra or missing
// counter increment anywhere in the pipeline moves it.
// ---------------------------------------------------------------

// The pinned constants live in tests/golden_util.hh
// (goldenCoreCases) so the equivalence tier re-runs exactly the
// same cases in the event-driven mode.

TEST(GoldenCore, CounterDigestsBenignStreams)
{
    size_t count = 0;
    const CoreCase *cases = goldenCoreCases(count);
    for (size_t i = 0; i < 5; ++i) {
        const CoreCase &c = cases[i];
        expectDigest(coreRunDigest(c.stream, c.attack, c.mode),
                     c.pinned, c.stream);
    }
}

TEST(GoldenCore, CounterDigestsAttackStreams)
{
    size_t count = 0;
    const CoreCase *cases = goldenCoreCases(count);
    for (size_t i = 5; i < 13; ++i) {
        const CoreCase &c = cases[i];
        expectDigest(coreRunDigest(c.stream, c.attack, c.mode),
                     c.pinned, c.stream);
    }
}

TEST(GoldenCore, CounterDigestsDefenseModes)
{
    size_t count = 0;
    const CoreCase *cases = goldenCoreCases(count);
    ASSERT_EQ(count, 22u);
    for (size_t i = 13; i < count; ++i) {
        const CoreCase &c = cases[i];
        std::string label = std::string(c.stream) + "/mode" +
                            std::to_string((int)c.mode);
        expectDigest(coreRunDigest(c.stream, c.attack, c.mode),
                     c.pinned, label.c_str());
    }
}

/** The MultiCore driver at N=1 (private uncore, lockstep driver)
 *  must reproduce every pinned tick-loop digest bit for bit. */
TEST(GoldenCore, MultiCoreSingleCoreMatchesAllPins)
{
    size_t count = 0;
    const CoreCase *cases = goldenCoreCases(count);
    ASSERT_EQ(count, 22u);
    for (size_t i = 0; i < count; ++i) {
        const CoreCase &c = cases[i];
        CoreParams params;
        std::string label = std::string("multicore-n1/") + c.stream +
                            "/mode" + std::to_string((int)c.mode);
        expectDigest(
            multiCoreRunDigest(c.stream, c.attack, c.mode, params),
            c.pinned, label.c_str());
    }
}

/** CPI-stack accounting (sim/cpi_stack.hh) is observation-only:
 *  attaching a stack must leave every pinned digest byte-identical
 *  (the stack lives outside the CounterRegistry on purpose), and
 *  the attribution must stay exhaustive on every case. */
TEST(GoldenCore, CpiAccountingLeavesAllPinsByteIdentical)
{
    size_t count = 0;
    const CoreCase *cases = goldenCoreCases(count);
    ASSERT_EQ(count, 22u);
    for (size_t i = 0; i < count; ++i) {
        const CoreCase &c = cases[i];
        std::string label = std::string("cpi/") + c.stream +
                            "/mode" + std::to_string((int)c.mode);
        uint64_t stack_cycles = 0, run_cycles = 0;
        expectDigest(cpiCoreRunDigest(c.stream, c.attack, c.mode,
                                      stack_cycles, run_cycles),
                     c.pinned, label.c_str());
        EXPECT_EQ(stack_cycles, run_cycles) << label;
    }
}

/** The fig15 third-row configuration: 100-instruction sampling. */
TEST(GoldenCore, Interval100CorpusDigest)
{
    CollectorConfig cfg;
    cfg.sampleInterval = 100;
    cfg.benignLength = 5000;
    cfg.attackLength = 4000;
    cfg.benignSeeds = 1;
    cfg.attackSeeds = 1;
    Collector collector(cfg);
    Dataset data;
    data.classNames = AttackRegistry::classNames();
    auto wl = WorkloadRegistry::create("compress", 11, 5000);
    collector.collectStream(*wl, BENIGN_CLASS, false, data);
    auto atk = AttackRegistry::create("spectre-stl", 13, 4000);
    collector.collectStream(*atk, AttackRegistry::classId(
                                      "spectre-stl"),
                            true, data);
    expectDigest(datasetDigest(data), 0xb2dcf17c5a982463ULL, "interval100corpus");
}

// ---------------------------------------------------------------
// Figure-level digests (shrunken pipelines, same code paths).
// ---------------------------------------------------------------

/** Figure 7: AM-GAN style/disc/gen loss per epoch. */
TEST(GoldenFigures, Fig07StyleLossDigest)
{
    ExperimentScale scale = ExperimentScale::quick();
    Dataset corpus = quickCorpus(); // already normalized
    Vaccinator vaccinator(scale.vaccination);
    VaccinationResult vr = vaccinator.run(corpus);
    ASSERT_FALSE(vr.styleLossHistory.empty());
    uint64_t h = hashDoubles(kFnvSeed, vr.styleLossHistory.data(),
                             vr.styleLossHistory.size());
    for (const auto &l : vr.lossHistory) {
        h = hashDouble(h, l.discLoss);
        h = hashDouble(h, l.genLoss);
    }
    expectDigest(h, 0xee8ce1cf8954431fULL, "fig07");
}

/** Figure 14: per-policy IPC on benign kernels. */
TEST(GoldenFigures, Fig14IpcDigest)
{
    const ExperimentSetup &setup = sharedSetup();
    constexpr uint64_t run_len = 12000;
    uint64_t h = kFnvSeed;
    for (const char *name : {"compress", "fft"}) {
        auto mk = [&] {
            return WorkloadRegistry::create(name, 5, run_len);
        };
        h = hashDouble(h,
                       runPlain(*mk(), DefenseMode::None).ipc());
        h = hashDouble(
            h, runPlain(*mk(), DefenseMode::InvisiSpecSpectre)
                   .ipc());

        GatedRunConfig cfg;
        cfg.profile = setup.profile;
        cfg.adaptive.secureMode = DefenseMode::InvisiSpecSpectre;
        cfg.adaptive.secureWindowInsts = 100000;
        h = hashDouble(h, runGated(*mk(), *setup.perspectron, cfg)
                              .sim.ipc());
        h = hashDouble(h,
                       runGated(*mk(), *setup.evax, cfg).sim.ipc());
        cfg.adaptive.secureMode = DefenseMode::FenceFuturistic;
        h = hashDouble(h,
                       runGated(*mk(), *setup.evax, cfg).sim.ipc());
    }
    expectDigest(h, 0x4c7fe64838ebc504ULL, "fig14");
}

/** Figure 15: per-window detector decisions (FP/FN study). */
TEST(GoldenFigures, Fig15WindowDecisionsDigest)
{
    const ExperimentSetup &setup = sharedSetup();
    GatedRunConfig cfg;
    cfg.profile = setup.profile;
    cfg.sampleInterval = 1000;

    uint64_t h = kFnvSeed;
    Detector *dets[2] = {setup.perspectron.get(),
                         setup.evax.get()};
    for (Detector *det : dets) {
        for (const char *name : {"compress", "eventsim"}) {
            auto wl = WorkloadRegistry::create(name, 31, 10000);
            for (bool d : windowDecisions(*wl, *det, cfg))
                h = hashU64(h, d ? 1 : 0);
        }
        for (const char *name : {"spectre-pht", "meltdown"}) {
            auto atk = AttackRegistry::create(name, 37, 8000);
            for (bool d : windowDecisions(*atk, *det, cfg))
                h = hashU64(h, d ? 1 : 0);
        }
    }
    expectDigest(h, 0xd1004cfaf7ad3085ULL, "fig15");
}

/** Figure 16: always-on vs gated overhead + gated security. */
TEST(GoldenFigures, Fig16OverheadDigest)
{
    const ExperimentSetup &setup = sharedSetup();
    constexpr uint64_t run_len = 12000;
    uint64_t h = kFnvSeed;
    for (DefenseMode mode : {DefenseMode::FenceSpectre,
                             DefenseMode::InvisiSpecSpectre}) {
        auto base_wl = WorkloadRegistry::create("compress", 5,
                                                run_len);
        h = hashDouble(h,
                       runPlain(*base_wl, DefenseMode::None).ipc());
        auto on_wl = WorkloadRegistry::create("compress", 5,
                                              run_len);
        h = hashDouble(h, runPlain(*on_wl, mode).ipc());

        GatedRunConfig cfg;
        cfg.profile = setup.profile;
        cfg.sampleInterval = 1000;
        cfg.adaptive.secureMode = mode;
        cfg.adaptive.secureWindowInsts = 1000000;
        auto gate_wl = WorkloadRegistry::create("compress", 5,
                                                run_len);
        GatedRunResult g = runGated(*gate_wl, *setup.evax, cfg);
        h = hashDouble(h, g.sim.ipc());
        h = hashDouble(h, g.flagRate());
    }
    // Security side: gated attacks must still be detected/stopped.
    for (const char *atk : {"spectre-pht", "meltdown"}) {
        GatedRunConfig cfg;
        cfg.profile = setup.profile;
        cfg.adaptive.secureMode = DefenseMode::InvisiSpecFuturistic;
        cfg.adaptive.secureWindowInsts = 1000000;
        auto a = AttackRegistry::create(atk, 17, 10000);
        GatedRunResult g = runGated(*a, *setup.evax, cfg);
        h = hashU64(h, g.flags);
        h = hashU64(h, g.windows);
        h = hashU64(h, g.sim.leaks);
        h = hashU64(h, g.activations);
        h = hashU64(h, g.secureInsts);
    }
    expectDigest(h, 0x54bc6adc1cb3a493ULL, "fig16");
}

/** Figure 17: detector scores + ROC on fuzzer-generated attacks. */
TEST(GoldenFigures, Fig17RocDigest)
{
    const ExperimentSetup &setup = sharedSetup();
    CollectorConfig ccfg = ExperimentScale::quick().collector;
    Collector collector(ccfg);
    Dataset benign;
    benign.classNames = AttackRegistry::classNames();
    for (const char *name : {"compress", "fft"}) {
        auto wl = WorkloadRegistry::create(name, 71, 10000);
        collector.collectStream(*wl, BENIGN_CLASS, false, benign);
    }
    Collector::applyProfile(benign, setup.profile);

    AttackFuzzer fuzzer(FuzzTool::Transynther, 1000);
    Dataset evasive = collector.collectFuzzerSamples(fuzzer, 4,
                                                     8000);
    Collector::applyProfile(evasive, setup.profile);

    uint64_t h = kFnvSeed;
    const Detector *dets[2] = {setup.perspectron.get(),
                               setup.evax.get()};
    for (const Detector *det : dets) {
        std::vector<double> scores;
        std::vector<bool> labels;
        for (const auto &s : evasive.samples) {
            scores.push_back(det->score(s.x));
            labels.push_back(true);
        }
        for (const auto &s : benign.samples) {
            scores.push_back(det->score(s.x));
            labels.push_back(false);
        }
        h = hashDoubles(h, scores.data(), scores.size());
        h = hashDouble(h, rocAuc(scores, labels));
    }
    expectDigest(h, 0xbaec5a31e9afb76dULL, "fig17");
}

/** Figure 18: detector scores across the feasible AML plane. */
TEST(GoldenFigures, Fig18AmlDigest)
{
    const ExperimentSetup &setup = sharedSetup();
    const Dataset &corpus = quickCorpus();

    std::vector<const Sample *> attacks;
    std::vector<double> benign_mean(FeatureCatalog::numBase, 0.0);
    size_t benign_count = 0;
    for (const auto &s : corpus.samples) {
        if (s.malicious) {
            if (attacks.size() < 5)
                attacks.push_back(&s);
        } else {
            for (size_t i = 0;
                 i < benign_mean.size() && i < s.x.size(); ++i)
                benign_mean[i] += s.x[i];
            ++benign_count;
        }
    }
    ASSERT_GE(attacks.size(), 1u);
    ASSERT_GE(benign_count, 1u);
    for (auto &v : benign_mean)
        v /= (double)benign_count;

    uint64_t h = kFnvSeed;
    std::vector<double> adv;
    for (const Sample *s : attacks) {
        adv.assign(s->x.size(), 0.0);
        for (double alpha = 1.0; alpha >= 0.4 - 1e-9;
             alpha -= 0.2) {
            for (double beta = 0.0; beta <= 0.6 + 1e-9;
                 beta += 0.2) {
                for (size_t i = 0; i < adv.size(); ++i) {
                    double b = i < benign_mean.size()
                                   ? benign_mean[i]
                                   : 0.0;
                    adv[i] = std::min(1.0,
                                      alpha * s->x[i] + beta * b);
                }
                h = hashDouble(h, setup.evax->score(adv));
                h = hashU64(h, setup.evax->flag(adv) ? 1 : 0);
                h = hashDouble(h, setup.perspectron->score(adv));
            }
        }
    }
    expectDigest(h, 0xbb856f82171fd483ULL, "fig18");
}

/** Figure 20: MLP detector accuracy, traditional vs augmented. */
TEST(GoldenFigures, Fig20DnnDigest)
{
    Dataset corpus = quickCorpus();
    Rng rng(2024);
    corpus.shuffle(rng);
    Dataset train, test;
    corpus.split(0.7, train, test);
    ASSERT_FALSE(train.samples.empty());
    ASSERT_FALSE(test.samples.empty());

    std::vector<size_t> sizes{train.samples.front().x.size(), 24,
                              1};
    Mlp net(sizes, Activation::Relu, Activation::Sigmoid, 11);
    Rng order_rng(11 * 31 + 7);
    std::vector<size_t> order(train.samples.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    for (unsigned e = 0; e < 3; ++e) {
        order_rng.shuffle(order);
        for (size_t idx : order) {
            const Sample &s = train.samples[idx];
            net.trainBce(s.x, s.malicious ? 1.0 : 0.0, 5e-4);
        }
    }
    std::vector<double> scores;
    std::vector<bool> labels;
    for (const auto &s : test.samples) {
        scores.push_back(net.forward(s.x)[0]);
        labels.push_back(s.malicious);
    }
    uint64_t h = hashDoubles(kFnvSeed, scores.data(),
                             scores.size());
    h = hashDouble(h, accuracyAt(scores, labels, 0.5));
    expectDigest(h, 0x2e68bf4c36e47c26ULL, "fig20");
}

/** Table I: engineered-feature separations over the corpus. */
TEST(GoldenFigures, Tab1EngineeredSeparationDigest)
{
    const Dataset &corpus = quickCorpus();
    uint64_t h = kFnvSeed;
    for (const auto &e : FeatureCatalog::engineered()) {
        RunningStat atk, ben;
        std::vector<EngineeredFeature> one{e};
        for (const auto &s : corpus.samples) {
            double v =
                FeatureCatalog::computeEngineered(s.x, one)[0];
            (s.malicious ? atk : ben).add(v);
        }
        h = hashDouble(h, atk.mean());
        h = hashDouble(h, ben.mean());
    }
    expectDigest(h, 0xe4a9670ae016d952ULL, "tab1");
}

/** Zero-day table: one leave-one-attack-out fold end to end. */
TEST(GoldenFigures, ZerodayFoldDigest)
{
    ExperimentScale scale = ExperimentScale::quick();
    Dataset corpus = quickCorpus();

    int cls = AttackRegistry::classId("flush-conflict");
    Rng rng(51);
    Dataset train, test;
    corpus.leaveOneAttackOut(cls, 0.2, rng, train, test);

    PerSpectron persp(7);
    trainTraditional(persp, train, scale.trainEpochs, scale.maxFpr,
                     rng);
    persp.tuneSensitivity(train, 0.05);

    uint64_t h = kFnvSeed;
    ConfusionCounts cm;
    for (const auto &s : test.samples) {
        if (s.attackClass == cls && s.malicious)
            cm.add(persp.flag(s.x), true);
    }
    h = hashDouble(h, cm.tpr());
    for (const auto &s : test.samples)
        h = hashDouble(h, persp.score(s.x));
    expectDigest(h, 0xbd28ae52ac6581f4ULL, "zeroday");
}

/** Arms-race arena: one-round tournament round-log CSV bytes. */
TEST(GoldenFigures, ArenaRoundCsvDigest)
{
    // The whole arena pipeline in one digest — corpus, ensemble
    // training, evasion search (all three strategies), diff-oracle
    // confirmation, harvest, vaccination retraining, recovery
    // re-scoring — hashed as the literal CSV bytes the round log
    // renders to. tests/test_arena.cc pins the 2-round log and its
    // serial/threaded byte-identity; this smaller pin lives with
    // the other figure digests so a sim/detector change that moves
    // everything is caught in one suite.
    TournamentConfig cfg;
    cfg.rounds = 1;
    cfg.evasion.candidatesPerStrategy = 3;
    cfg.evasion.gradientIters = 2;
    Tournament tournament(cfg);
    TournamentResult result = tournament.run();
    expectDigest(hashBytes(result.roundLogCsv()),
                 0x4c63e95a5f031b61ULL, "arena");
}

/** Ablation: secure-window dwell sweep through the controller. */
TEST(GoldenFigures, AblationSecureWindowDigest)
{
    const ExperimentSetup &setup = sharedSetup();
    uint64_t h = kFnvSeed;
    for (uint64_t window : {10000ULL, 100000ULL}) {
        GatedRunConfig cfg;
        cfg.profile = setup.profile;
        cfg.adaptive.secureMode = DefenseMode::InvisiSpecSpectre;
        cfg.adaptive.secureWindowInsts = window;
        auto atk = AttackRegistry::create("spectre-pht", 23, 12000);
        GatedRunResult g = runGated(*atk, *setup.evax, cfg);
        h = hashSimResult(h, g.sim);
        h = hashU64(h, g.flags);
        h = hashU64(h, g.activations);
        h = hashU64(h, g.secureInsts);
    }
    expectDigest(h, 0xae45bad0374a8cddULL, "ablation");
}

} // anonymous namespace
} // namespace evax
