/**
 * @file
 * Documentation consistency tests (ctest label "docs"):
 *
 *  - every relative markdown link and intra-document anchor in the
 *    repo's *.md files resolves;
 *  - the docs/COUNTERS.md catalog lists exactly the detector's 145
 *    feature names, in registry order, so the table cannot rot as
 *    the feature set evolves.
 *
 * Compiled with EVAX_SOURCE_DIR pointing at the repo root.
 */

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hpc/features.hh"

#ifndef EVAX_SOURCE_DIR
#error "test_docs requires EVAX_SOURCE_DIR"
#endif

using namespace evax;

namespace
{

struct MarkdownFile
{
    std::string relPath; ///< path relative to the repo root
    std::vector<std::string> lines;
};

bool
readLines(const std::string &path, std::vector<std::string> &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return true;
}

/** The repo's markdown set: top-level *.md plus docs/*.md. */
std::vector<MarkdownFile>
markdownFiles()
{
    static const char *const kFiles[] = {
        "README.md",          "ROADMAP.md",
        "DESIGN.md",          "EXPERIMENTS.md",
        "PAPER.md",           "CHANGES.md",
        "docs/OBSERVABILITY.md", "docs/COUNTERS.md",
        "docs/TESTING.md",       "docs/ARENA.md",
        "docs/SERVING.md",       "docs/PERFORMANCE.md",
        "docs/METRICS.md",
    };
    std::vector<MarkdownFile> files;
    for (const char *rel : kFiles) {
        MarkdownFile f;
        f.relPath = rel;
        if (readLines(std::string(EVAX_SOURCE_DIR) + "/" + rel,
                      f.lines)) {
            files.push_back(std::move(f));
        }
    }
    return files;
}

/** GitHub-style anchor slug for a heading text. */
std::string
slugify(const std::string &heading)
{
    std::string slug;
    for (char c : heading) {
        unsigned char u = (unsigned char)c;
        if (std::isalnum(u)) {
            slug += (char)std::tolower(u);
        } else if (c == ' ' || c == '-') {
            slug += '-';
        } // other punctuation is dropped
    }
    return slug;
}

/** Anchors defined by a file's headings (skipping code fences). */
std::set<std::string>
collectAnchors(const MarkdownFile &f)
{
    std::set<std::string> anchors;
    bool in_fence = false;
    for (const std::string &line : f.lines) {
        if (line.rfind("```", 0) == 0) {
            in_fence = !in_fence;
            continue;
        }
        if (in_fence || line.empty() || line[0] != '#')
            continue;
        size_t level = line.find_first_not_of('#');
        if (level == std::string::npos ||
            level >= line.size() || line[level] != ' ') {
            continue;
        }
        std::string text = line.substr(level + 1);
        std::string slug = slugify(text);
        // GitHub dedups repeats as slug-1, slug-2; headings in these
        // docs are unique, so plain slugs suffice.
        anchors.insert(slug);
    }
    return anchors;
}

/** Extract every inline markdown link target in one line. */
std::vector<std::string>
linkTargets(const std::string &line)
{
    std::vector<std::string> targets;
    for (size_t i = 0; i + 1 < line.size(); ++i) {
        if (line[i] != ']' || line[i + 1] != '(')
            continue;
        size_t close = line.find(')', i + 2);
        if (close == std::string::npos)
            continue;
        targets.push_back(line.substr(i + 2, close - i - 2));
    }
    return targets;
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

std::string
dirOf(const std::string &relPath)
{
    size_t slash = relPath.rfind('/');
    return slash == std::string::npos ? ""
                                      : relPath.substr(0, slash + 1);
}

/** Normalize "docs/../README.md" style paths. */
std::string
normalize(const std::string &path)
{
    std::vector<std::string> parts;
    std::stringstream ss(path);
    std::string part;
    while (std::getline(ss, part, '/')) {
        if (part.empty() || part == ".")
            continue;
        if (part == "..") {
            if (!parts.empty())
                parts.pop_back();
            continue;
        }
        parts.push_back(part);
    }
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i)
        out += (i ? "/" : "") + parts[i];
    return out;
}

} // anonymous namespace

TEST(Docs, CoreDocumentsPresent)
{
    std::set<std::string> present;
    for (const auto &f : markdownFiles())
        present.insert(f.relPath);
    for (const char *required :
         {"README.md", "DESIGN.md", "EXPERIMENTS.md",
          "docs/OBSERVABILITY.md", "docs/COUNTERS.md"}) {
        EXPECT_TRUE(present.count(required))
            << required << " is missing";
    }
}

TEST(Docs, RelativeLinksResolve)
{
    std::vector<MarkdownFile> files = markdownFiles();
    std::map<std::string, std::set<std::string>> anchorsByFile;
    for (const auto &f : files)
        anchorsByFile[normalize(f.relPath)] = collectAnchors(f);

    for (const auto &f : files) {
        bool in_fence = false;
        for (size_t ln = 0; ln < f.lines.size(); ++ln) {
            const std::string &line = f.lines[ln];
            if (line.rfind("```", 0) == 0) {
                in_fence = !in_fence;
                continue;
            }
            if (in_fence)
                continue;
            for (const std::string &target : linkTargets(line)) {
                if (target.rfind("http://", 0) == 0 ||
                    target.rfind("https://", 0) == 0 ||
                    target.rfind("mailto:", 0) == 0) {
                    continue; // external: not checked offline
                }
                std::string where = f.relPath + ":" +
                                    std::to_string(ln + 1);
                std::string path = target, anchor;
                size_t hash = target.find('#');
                if (hash != std::string::npos) {
                    path = target.substr(0, hash);
                    anchor = target.substr(hash + 1);
                }
                std::string resolved =
                    path.empty()
                        ? normalize(f.relPath)
                        : normalize(dirOf(f.relPath) + path);
                if (!path.empty()) {
                    EXPECT_TRUE(fileExists(
                        std::string(EVAX_SOURCE_DIR) + "/" +
                        resolved))
                        << where << ": broken link -> " << target;
                }
                if (!anchor.empty() &&
                    anchorsByFile.count(resolved)) {
                    EXPECT_TRUE(
                        anchorsByFile[resolved].count(anchor))
                        << where << ": dangling anchor -> #"
                        << anchor;
                }
            }
        }
    }
}

TEST(Docs, HotPathSectionAnchorsItsContract)
{
    // DESIGN.md §10 is the written contract for the tick-loop
    // optimizations: anyone touching the hot path must find the
    // byte-identical-CSV invariant and the guard-rail suites from
    // there. Pin the anchor and the load-bearing references so the
    // section cannot silently rot or be renamed away.
    MarkdownFile design;
    design.relPath = "DESIGN.md";
    ASSERT_TRUE(readLines(
        std::string(EVAX_SOURCE_DIR) + "/DESIGN.md", design.lines));

    std::set<std::string> anchors = collectAnchors(design);
    EXPECT_TRUE(anchors.count("10-hot-path-layout"))
        << "DESIGN.md must keep the '## 10. Hot-path layout' "
           "heading";

    std::string body;
    for (const std::string &line : design.lines)
        body += line + "\n";
    for (const char *required :
         {"byte-identical", "RobRing", "srcsReady",
          "tests/test_golden.cc", "BENCH_sim.json",
          "bench/check_bench_regression.py"}) {
        EXPECT_NE(body.find(required), std::string::npos)
            << "DESIGN.md hot-path section lost reference to '"
            << required << "'";
    }
}

TEST(Docs, ExecutionModesSectionAnchorsItsContract)
{
    // DESIGN.md §10's execution-modes subsection and
    // docs/PERFORMANCE.md#execution-modes are the written contract
    // for the event-driven scheduler and the fast-forward harness:
    // byte-identity for the former, functional-surface identity for
    // the latter, both pinned by ctest -L sched. Pin the anchors
    // and the load-bearing references so a rename cannot strand
    // the links from source headers and CI.
    MarkdownFile design;
    design.relPath = "DESIGN.md";
    ASSERT_TRUE(readLines(
        std::string(EVAX_SOURCE_DIR) + "/DESIGN.md", design.lines));
    EXPECT_TRUE(collectAnchors(design).count("execution-modes"))
        << "DESIGN.md must keep the '### Execution modes' heading";

    std::string body;
    for (const std::string &line : design.lines)
        body += line + "\n";
    for (const char *required :
         {"RunMode::EventDriven", "src/sim/scheduler.hh",
          "lost wakeup", "src/verify/fast_forward.hh",
          "tests/test_equivalence.cc", "tests/test_scheduler.cc",
          "corpus/fig15_interval100_event", "test_mut_lost_wakeup",
          "test_mut_stale_checkpoint"}) {
        EXPECT_NE(body.find(required), std::string::npos)
            << "DESIGN.md execution-modes section lost reference "
               "to '" << required << "'";
    }

    MarkdownFile perf;
    perf.relPath = "docs/PERFORMANCE.md";
    ASSERT_TRUE(readLines(
        std::string(EVAX_SOURCE_DIR) + "/docs/PERFORMANCE.md",
        perf.lines));
    EXPECT_TRUE(collectAnchors(perf).count("execution-modes"))
        << "docs/PERFORMANCE.md lost the #execution-modes heading";

    std::string perf_body;
    for (const std::string &line : perf.lines)
        perf_body += line + "\n";
    for (const char *required :
         {"corpus/fig15_interval100_event", "timing wheel",
          "idleSkip", "kMinSkipCycles", "sched-smoke",
          "ctest -L sched"}) {
        EXPECT_NE(perf_body.find(required), std::string::npos)
            << "docs/PERFORMANCE.md execution-modes section lost "
               "reference to '" << required << "'";
    }

    MarkdownFile testing;
    testing.relPath = "docs/TESTING.md";
    ASSERT_TRUE(readLines(
        std::string(EVAX_SOURCE_DIR) + "/docs/TESTING.md",
        testing.lines));
    std::string testing_body;
    for (const std::string &line : testing.lines)
        testing_body += line + "\n";
    for (const char *required :
         {"-L sched", "tests/test_scheduler.cc",
          "tests/test_equivalence.cc", "test_mut_lost_wakeup",
          "test_mut_stale_checkpoint"}) {
        EXPECT_NE(testing_body.find(required), std::string::npos)
            << "docs/TESTING.md lost reference to '" << required
            << "'";
    }
}

TEST(Docs, ObservabilityAnchorsItsTelemetryContract)
{
    // Source files point users at these anchors
    // (src/util/manifest.hh, bench/bench_util.hh,
    // tools/evax_inspect.cc), and README.md/docs/TESTING.md link
    // them; pin them so a heading rename cannot strand the
    // references. Also pin the load-bearing schema names.
    MarkdownFile obs;
    obs.relPath = "docs/OBSERVABILITY.md";
    ASSERT_TRUE(readLines(std::string(EVAX_SOURCE_DIR) +
                              "/docs/OBSERVABILITY.md",
                          obs.lines));

    std::set<std::string> anchors = collectAnchors(obs);
    for (const char *required :
         {"timeline-telemetry", "run-manifests", "perfetto-export",
          "evax-inspect"}) {
        EXPECT_TRUE(anchors.count(required))
            << "docs/OBSERVABILITY.md lost the #" << required
            << " heading";
    }

    std::string body;
    for (const std::string &line : obs.lines)
        body += line + "\n";
    for (const char *required :
         {"evax-timeline-v1", "evax-manifest-v1",
          "kind,track,label,inst,cycle,end_inst,end_cycle,value",
          "ui.perfetto.dev", "tests/test_timeline.cc",
          "--manifest-out", "export-perfetto"}) {
        EXPECT_NE(body.find(required), std::string::npos)
            << "docs/OBSERVABILITY.md lost reference to '"
            << required << "'";
    }
}

TEST(Docs, ServingDocsAnchorTheirContracts)
{
    // docs/SERVING.md is the written contract for the batched
    // scoring stack (bit-identical kernels, deterministic summary,
    // the evax_serve gates) and docs/PERFORMANCE.md for the
    // baseline/regression workflow. Source files and CI point at
    // these anchors; pin them plus the load-bearing schema and
    // tool references so neither document can silently rot.
    MarkdownFile serving;
    serving.relPath = "docs/SERVING.md";
    ASSERT_TRUE(readLines(
        std::string(EVAX_SOURCE_DIR) + "/docs/SERVING.md",
        serving.lines));

    std::set<std::string> anchors = collectAnchors(serving);
    for (const char *required :
         {"architecture", "the-serve-cli",
          "worked-example-one-million-tenants", "metrics-schema",
          "determinism-guarantees"}) {
        EXPECT_TRUE(anchors.count(required))
            << "docs/SERVING.md lost the #" << required
            << " heading";
    }

    std::string body;
    for (const std::string &line : serving.lines)
        body += line + "\n";
    for (const char *required :
         {"WindowBatch", "scoreBatchSharded", "bit-identical",
          "score_digest", "flag_digest", "serve.windows_per_sec",
          "serve.batch_score_us", "metric,value",
          "tests/test_serve.cc", "--check"}) {
        EXPECT_NE(body.find(required), std::string::npos)
            << "docs/SERVING.md lost reference to '" << required
            << "'";
    }

    MarkdownFile perf;
    perf.relPath = "docs/PERFORMANCE.md";
    ASSERT_TRUE(readLines(
        std::string(EVAX_SOURCE_DIR) + "/docs/PERFORMANCE.md",
        perf.lines));

    std::set<std::string> perf_anchors = collectAnchors(perf);
    for (const char *required :
         {"batched-vs-scalar", "the-regression-comparator",
          "reading-a-ci-perf-failure"}) {
        EXPECT_TRUE(perf_anchors.count(required))
            << "docs/PERFORMANCE.md lost the #" << required
            << " heading";
    }

    std::string perf_body;
    for (const std::string &line : perf.lines)
        perf_body += line + "\n";
    for (const char *required :
         {"BENCH_sim.json", "check_bench_regression.py",
          "--tolerance", "--min-speedup", "--filter", "--json-out",
          "windows_per_sec", "evax-bench-regression-v1",
          "bench_detector_latency"}) {
        EXPECT_NE(perf_body.find(required), std::string::npos)
            << "docs/PERFORMANCE.md lost reference to '"
            << required << "'";
    }
}

TEST(Docs, MetricsDocAnchorsItsContract)
{
    // docs/METRICS.md is the written contract for the streaming
    // metrics layer and CPI-stack accounting: src/util/metrics.hh
    // and src/sim/cpi_stack.hh point readers at it (the latter at
    // #cpi-buckets specifically), and README.md,
    // docs/OBSERVABILITY.md and docs/PERFORMANCE.md link it. Pin
    // the anchors and the load-bearing references so a rename
    // cannot strand them.
    MarkdownFile metrics;
    metrics.relPath = "docs/METRICS.md";
    ASSERT_TRUE(readLines(
        std::string(EVAX_SOURCE_DIR) + "/docs/METRICS.md",
        metrics.lines));

    std::set<std::string> anchors = collectAnchors(metrics);
    for (const char *required :
         {"metric-kinds-and-naming", "histogram-bucketing",
          "exposition-format", "snapshots-and-the-inspect-cli",
          "cpi-buckets", "determinism-contract"}) {
        EXPECT_TRUE(anchors.count(required))
            << "docs/METRICS.md lost the #" << required
            << " heading";
    }

    std::string body;
    for (const std::string &line : metrics.lines)
        body += line + "\n";
    for (const char *required :
         {"src/util/metrics.hh", "src/sim/cpi_stack.hh",
          "evax-metrics-v1", "evax_cpi_cycles_total",
          "evax_serve_score", "--metrics-out", "metrics_digest",
          "tests/test_metrics.cc", "tests/test_golden.cc",
          "metrics-smoke", "fig16_cpi_stack",
          "sum(buckets) == SimResult::cycles"}) {
        EXPECT_NE(body.find(required), std::string::npos)
            << "docs/METRICS.md lost reference to '" << required
            << "'";
    }

    // Every CPI bucket name must appear in the bucket table.
    for (const char *bucket :
         {"`base`", "`frontend`", "`badspec`", "`mem_l1`",
          "`mem_llc`", "`mem_dram`", "`coherence`", "`defense`",
          "`backend`"}) {
        EXPECT_NE(body.find(bucket), std::string::npos)
            << "docs/METRICS.md bucket table lost " << bucket;
    }
}

TEST(Docs, CountersCatalogMatchesFeatureRegistry)
{
    std::vector<std::string> lines;
    ASSERT_TRUE(readLines(
        std::string(EVAX_SOURCE_DIR) + "/docs/COUNTERS.md", lines))
        << "docs/COUNTERS.md missing";

    // Catalog rows: "| `name` | ... |" — first cell is the counter
    // name in backticks, rows appear in registry order.
    std::vector<std::string> documented;
    for (const std::string &line : lines) {
        if (line.rfind("| `", 0) != 0)
            continue;
        size_t start = line.find('`') + 1;
        size_t end = line.find('`', start);
        ASSERT_NE(end, std::string::npos) << "bad row: " << line;
        documented.push_back(line.substr(start, end - start));
        // Every row must fill all four columns.
        EXPECT_GE((size_t)std::count(line.begin(), line.end(), '|'),
                  5u)
            << "row with missing cells: " << line;
    }

    const std::vector<std::string> &expected =
        FeatureCatalog::evaxFeatureNames();
    ASSERT_EQ(expected.size(), FeatureCatalog::numEvax);
    ASSERT_EQ(documented.size(), expected.size())
        << "docs/COUNTERS.md must document every detector feature";
    for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(documented[i], expected[i])
            << "row " << i
            << " out of sync with FeatureCatalog order";
    }
}

TEST(Docs, MultiCoreCoherenceSectionAnchorsItsContract)
{
    // DESIGN.md §11 is the written contract for the multi-core
    // machine: the MESI directory semantics, the N=1
    // byte-identity tentpole, and the coherence test tier all hang
    // off it. Pin the anchor and the load-bearing references in
    // DESIGN.md, docs/TESTING.md and docs/COUNTERS.md so none of
    // them can silently rot or be renamed away.
    MarkdownFile design;
    design.relPath = "DESIGN.md";
    ASSERT_TRUE(readLines(
        std::string(EVAX_SOURCE_DIR) + "/DESIGN.md", design.lines));
    EXPECT_TRUE(collectAnchors(design).count(
        "11-multi-core-and-coherence"))
        << "DESIGN.md must keep the '## 11. Multi-core and "
           "coherence' heading";

    std::string body;
    for (const std::string &line : design.lines)
        body += line + "\n";
    for (const char *required :
         {"src/sim/coherence.hh", "src/sim/multicore.hh",
          "back-invalidate", "Cache::residentLines",
          "lastLoadVersion", "CounterMirror",
          "tests/test_coherence.cc", "test_mut_drop_invalidate",
          "EVAX_MUTATION_DROP_INVALIDATE", "evax_multicore",
          "calibrateGateThreshold", "GateScope::FlaggedCore",
          "byte-identical", "multicore-smoke"}) {
        EXPECT_NE(body.find(required), std::string::npos)
            << "DESIGN.md multi-core section lost reference to '"
            << required << "'";
    }

    std::vector<std::string> testing_lines;
    ASSERT_TRUE(readLines(
        std::string(EVAX_SOURCE_DIR) + "/docs/TESTING.md",
        testing_lines));
    std::string testing_body;
    for (const std::string &line : testing_lines)
        testing_body += line + "\n";
    for (const char *required :
         {"-L coherence", "tests/test_coherence.cc",
          "test_mut_drop_invalidate", "evax_multicore",
          "multicore-smoke"}) {
        EXPECT_NE(testing_body.find(required), std::string::npos)
            << "docs/TESTING.md lost reference to '" << required
            << "'";
    }

    std::vector<std::string> counters_lines;
    ASSERT_TRUE(readLines(
        std::string(EVAX_SOURCE_DIR) + "/docs/COUNTERS.md",
        counters_lines));
    std::string counters_body;
    for (const std::string &line : counters_lines)
        counters_body += line + "\n";
    for (const char *required :
         {"Per-core naming", "`core<i>.`", "`shared.`",
          "CounterMirror", "coh.*"}) {
        EXPECT_NE(counters_body.find(required), std::string::npos)
            << "docs/COUNTERS.md lost reference to '" << required
            << "'";
    }
}
