/**
 * @file
 * bench_util.hh coverage: ScopedPhaseTimer phase accounting and
 * BenchObservability flag parsing / artifact + manifest emission.
 * These helpers sit under every figure bench, so regressions here
 * corrupt provenance for the whole reproduction suite.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "util/json.hh"
#include "util/statreg.hh"
#include "util/trace.hh"

namespace evax
{
namespace
{

/** Build a mutable argv for BenchObservability. */
struct Argv
{
    explicit Argv(std::vector<std::string> words)
        : words_(std::move(words))
    {
        for (auto &w : words_)
            ptrs_.push_back(w.data());
    }

    int argc() { return (int)ptrs_.size(); }
    char **argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> words_;
    std::vector<char *> ptrs_;
};

std::string
slurp(const std::string &path)
{
    std::ifstream f(path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

const PhaseRecord *
findPhase(const std::string &name)
{
    std::lock_guard<std::mutex> lock(bench_detail::phaseMutex());
    for (const auto &rec : bench_detail::phaseLog()) {
        if (rec.name == name)
            return &rec;
    }
    return nullptr;
}

TEST(ScopedPhaseTimer, LogsPhaseWithSecondsAndStatDeltas)
{
    StatRegistry sr;
    {
        ScopedPhaseTimer phase("unit-phase-a", &sr);
        sr.setNumber("unit.phase.metric", 42.0);
    }
    const PhaseRecord *rec = findPhase("unit-phase-a");
    ASSERT_NE(rec, nullptr);
    EXPECT_GE(rec->seconds, 0.0);

    bool saw_delta = false;
    for (const auto &kv : rec->topDeltas) {
        if (kv.first == "unit.phase.metric" && kv.second == 42.0)
            saw_delta = true;
    }
    EXPECT_TRUE(saw_delta);

    // The phase also feeds a wall-time StatAvg into the registry.
    const StatBase *avg =
        sr.find("bench.phase.unit-phase-a.seconds");
    ASSERT_NE(avg, nullptr);
    std::ostringstream os;
    sr.dumpStats(os, StatsFormat::Json);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;
    const json::Value *v =
        doc.find("bench.phase.unit-phase-a.seconds");
    ASSERT_NE(v, nullptr);
    EXPECT_DOUBLE_EQ(v->find("samples")->asNumber(-1), 1.0);
}

TEST(ScopedPhaseTimer, NullRegistrySkipsStatsButStillLogs)
{
    {
        ScopedPhaseTimer phase("unit-phase-null", nullptr);
    }
    const PhaseRecord *rec = findPhase("unit-phase-null");
    ASSERT_NE(rec, nullptr);
    EXPECT_TRUE(rec->topDeltas.empty());
}

TEST(BenchObservability, StatsSinkGatedOnFlag)
{
    Argv no_stats({"bench", "--manifest-out", "-"});
    BenchObservability obs(no_stats.argc(), no_stats.argv());
    EXPECT_EQ(obs.stats(), nullptr);
    trace::setMask(0);
}

TEST(BenchObservability, ParsesFlagsAndWritesManifest)
{
    const std::string stats_path = "test_bench_util_stats.json";
    const std::string manifest_path = "test_bench_util_manifest.json";
    std::remove(stats_path.c_str());
    std::remove(manifest_path.c_str());
    {
        Argv args({"bench", "--trace", "detect,defense",
                   "--stats-out", stats_path, "--manifest-out",
                   manifest_path});
        BenchObservability obs(args.argc(), args.argv());
        EXPECT_NE(obs.stats(), nullptr);
        if (trace::compiledIn()) {
            EXPECT_EQ(trace::mask(),
                      (uint32_t)(trace::CatDetect |
                                 trace::CatDefense));
        }
        obs.manifest().addSeed(77);
        obs.manifest().setConfig("unit", "bench-util");
        // Destructor saves the stats dump and the manifest.
    }
    trace::setMask(0);

    json::Value stats;
    std::string err;
    ASSERT_TRUE(json::parse(slurp(stats_path), stats, &err)) << err;

    json::Value manifest;
    ASSERT_TRUE(json::parse(slurp(manifest_path), manifest, &err))
        << err;
    EXPECT_EQ(manifest.find("schema")->asString(),
              "evax-manifest-v1");
    ASSERT_NE(manifest.find("args"), nullptr);
    EXPECT_EQ(manifest.find("args")->array.size(), 7u);
    EXPECT_DOUBLE_EQ(manifest.find("seeds")->array.at(0).asNumber(),
                     77.0);
    EXPECT_EQ(manifest.find("config")->find("unit")->asString(),
              "bench-util");
    // The stats dump the destructor wrote is listed as an artifact.
    bool stats_listed = false;
    for (const auto &a : manifest.find("artifacts")->array) {
        if (a.asString() == stats_path)
            stats_listed = true;
    }
    EXPECT_TRUE(stats_listed);

    std::remove(stats_path.c_str());
    std::remove(manifest_path.c_str());
}

TEST(BenchObservability, EmitResultArtifactsReachTheManifest)
{
    const std::string manifest_path =
        "test_bench_util_artifacts.json";
    std::remove(manifest_path.c_str());
    {
        Argv args({"bench", "--manifest-out", manifest_path});
        BenchObservability obs(args.argc(), args.argv());
        Table t({"x"});
        t.addRow({"1"});
        emitResult(t, "test_bench_util_table", "unit table");
    }
    trace::setMask(0);

    json::Value manifest;
    std::string err;
    ASSERT_TRUE(json::parse(slurp(manifest_path), manifest, &err))
        << err;
    // emitResult saves under the ./artifacts output convention and
    // records that path in the manifest (bench_util.hh
    // artifactPath()).
    bool csv_listed = false;
    for (const auto &a : manifest.find("artifacts")->array) {
        if (a.asString() == "artifacts/test_bench_util_table.csv")
            csv_listed = true;
    }
    EXPECT_TRUE(csv_listed);

    std::remove(manifest_path.c_str());
    std::remove("artifacts/test_bench_util_table.csv");
}

TEST(BenchObservabilityDeathTest, UnknownTraceCategoryIsFatal)
{
    Argv args({"bench", "--trace", "nonsense", "--manifest-out",
               "-"});
    EXPECT_EXIT(
        {
            BenchObservability obs(args.argc(), args.argv());
        },
        ::testing::ExitedWithCode(1), "unknown category");
}

} // anonymous namespace
} // namespace evax
