/**
 * @file
 * Streaming-metrics + CPI-stack tier (ctest -L tsan).
 *
 * Pins the contracts docs/METRICS.md documents:
 *  - log-bucketed histogram boundaries are bit-exact (a value on a
 *    bucket's upper bound counts in that bucket, Prometheus `le`
 *    semantics);
 *  - sharded per-chunk observation + chunk-order merge is
 *    byte-identical at any thread count (pinned exposition digest);
 *  - the text exposition round-trips through the strict parser and
 *    the JSON snapshot through the strict JSON parser;
 *  - CPI-stack accounting is exhaustive — every bucket sum equals
 *    the run's cycle count — across randomized core configs, in
 *    tick-loop AND event-driven modes, at N=1 and N=2, and the two
 *    modes attribute byte-identically;
 *  - per-window CPI deltas on the timeline cover every cycle of
 *    every window.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <random>
#include <vector>

#include "attacks/registry.hh"
#include "hpc/timeline_sampler.hh"
#include "sim/cpi_stack.hh"
#include "sim/multicore.hh"
#include "util/json.hh"
#include "util/metrics.hh"
#include "util/parallel.hh"
#include "util/timeline.hh"
#include "workload/registry.hh"

#include "golden_util.hh"

namespace evax
{
namespace
{

// ---------------------------------------------------------------
// Histogram bucket boundaries.
// ---------------------------------------------------------------

TEST(MetricsHistogram, BucketBoundariesAreExact)
{
    metrics::Histogram h(-4, 4);
    // Every finite upper bound is inclusive (`le` semantics): the
    // boundary value itself lands in the bucket, the next
    // representable double in the one above.
    for (size_t i = 0; i + 1 < h.numBuckets(); ++i) {
        double ub = h.upperBound(i);
        EXPECT_EQ(h.bucketIndex(ub), i) << "boundary " << ub;
        double above = std::nextafter(
            ub, std::numeric_limits<double>::infinity());
        EXPECT_EQ(h.bucketIndex(above), i + 1)
            << "just above " << ub;
    }
    // Underflow, negatives and NaN land in the first bucket;
    // overflow in the +Inf bucket.
    EXPECT_EQ(h.bucketIndex(0.0), 0u);
    EXPECT_EQ(h.bucketIndex(-123.0), 0u);
    EXPECT_EQ(h.bucketIndex(std::nan("")), 0u);
    EXPECT_EQ(h.bucketIndex(1e300), h.numBuckets() - 1);
}

TEST(MetricsHistogram, ObserveCountsAndMergeMatchSerial)
{
    metrics::Histogram serial(-4, 4);
    metrics::Histogram a(-4, 4), b(-4, 4);
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> dist(0.0, 20.0);
    for (int i = 0; i < 2000; ++i) {
        double v = dist(rng);
        serial.observe(v);
        ((i & 1) ? a : b).observe(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), serial.count());
    // Bucket state is exact; sum() differs only by double
    // re-association across the two accumulation orders.
    EXPECT_NEAR(a.sum(), serial.sum(), 1e-6);
    for (size_t i = 0; i < serial.numBuckets(); ++i)
        EXPECT_EQ(a.bucketCount(i), serial.bucketCount(i));
    EXPECT_EQ(a.percentile(0.5), serial.percentile(0.5));
}

// ---------------------------------------------------------------
// Deterministic sharded merge (the serving-path pattern).
// ---------------------------------------------------------------

/** Exactly the serve-layer pattern: per-chunk local histograms
 *  over a fixed chunk grid, merged in chunk-index order. */
uint64_t
shardedDigest(unsigned threads)
{
    unsigned before = globalThreadCount();
    setGlobalThreadCount(threads);
    constexpr size_t kRows = 10000, kChunk = 256;
    metrics::Registry reg;
    metrics::Histogram &sink =
        reg.histogram("test_sharded", -10, 10, "sharded merge");
    const size_t num_chunks = (kRows + kChunk - 1) / kChunk;
    std::vector<metrics::Histogram> local;
    for (size_t c = 0; c < num_chunks; ++c)
        local.emplace_back(-10, 10);
    parallelChunks(kRows, kChunk, [&](size_t lo, size_t hi) {
        size_t c = lo / kChunk;
        for (size_t r = lo; r < hi; ++r) {
            // Index-deterministic value generation (exact doubles).
            double v = std::ldexp(1.0 + (double)(r % 1024) / 1024.0,
                                  (int)(r % 17) - 8);
            local[c].observe(v);
        }
    });
    for (size_t c = 0; c < num_chunks; ++c)
        sink.merge(local[c]);
    uint64_t digest = reg.expositionDigest();
    setGlobalThreadCount(before);
    return digest;
}

TEST(MetricsDeterminism, ShardedMergeByteIdenticalAndPinned)
{
    uint64_t serial = shardedDigest(1);
    uint64_t threaded = shardedDigest(4);
    EXPECT_EQ(serial, threaded);
    // Pinned: any change to bucket layout, formatting or merge
    // order is a contract break (update docs/METRICS.md with it).
    EXPECT_EQ(serial, 0xe60bbd2eb724942aULL)
        << "exposition digest moved: 0x" << std::hex << serial;
}

// ---------------------------------------------------------------
// Exposition + snapshot round-trips.
// ---------------------------------------------------------------

TEST(MetricsExposition, RoundTripsThroughStrictParsers)
{
    metrics::Registry reg;
    reg.counter("rt_requests_total", "requests", "class=\"a\"")
        .inc(41);
    reg.counter("rt_requests_total", "requests", "class=\"b\"")
        .inc(1);
    reg.gauge("rt_temperature", "degrees").set(-3.25);
    metrics::Histogram &h =
        reg.histogram("rt_latency_seconds", -10, 10, "latency");
    h.observe(0.5);
    h.observe(0.5);
    h.observe(3.0);
    h.observe(1e9); // overflow -> +Inf bucket only

    const std::string text = reg.exposition();
    std::vector<metrics::ExpositionSample> samples;
    std::string err;
    ASSERT_TRUE(metrics::parseExposition(text, samples, &err))
        << err;

    auto value = [&](const std::string &name) -> double {
        for (const auto &s : samples) {
            if (s.name == name)
                return s.value;
        }
        ADD_FAILURE() << "missing sample " << name;
        return -1.0;
    };
    EXPECT_EQ(value("rt_requests_total{class=\"a\"}"), 41.0);
    EXPECT_EQ(value("rt_requests_total{class=\"b\"}"), 1.0);
    EXPECT_EQ(value("rt_temperature"), -3.25);
    EXPECT_EQ(value("rt_latency_seconds_count"), 4.0);
    EXPECT_EQ(value("rt_latency_seconds_bucket{le=\"+Inf\"}"), 4.0);

    // Cumulative `le` buckets never decrease.
    double prev = 0.0;
    for (const auto &s : samples) {
        if (s.name.rfind("rt_latency_seconds_bucket", 0) == 0) {
            EXPECT_GE(s.value, prev) << s.name;
            prev = s.value;
        }
    }

    // The JSON snapshot is strict-JSON clean and carries the
    // percentile summary the inspect CLI renders.
    json::Value doc;
    ASSERT_TRUE(json::parse(reg.jsonSnapshot(), doc, &err)) << err;
    ASSERT_TRUE(doc.find("schema"));
    EXPECT_EQ(doc.find("schema")->asString(), "evax-metrics-v1");
    std::map<std::string, double> flat = json::flattenNumeric(doc);
    EXPECT_EQ(flat.at("metrics.rt_latency_seconds.count"), 4.0);
    EXPECT_TRUE(flat.count("metrics.rt_latency_seconds.p50"));
    EXPECT_TRUE(flat.count("metrics.rt_latency_seconds.p99"));
    EXPECT_EQ(flat.at("metrics.rt_requests_total{class=\"a\"}.value"),
              41.0);
}

TEST(MetricsExposition, ParserRejectsGarbage)
{
    std::vector<metrics::ExpositionSample> samples;
    std::string err;
    EXPECT_FALSE(metrics::parseExposition("# comment\n", samples,
                                          &err));
    EXPECT_FALSE(
        metrics::parseExposition("name_only\n", samples, &err));
    EXPECT_FALSE(
        metrics::parseExposition("x 1.0 trailing\n", samples, &err));
    EXPECT_FALSE(
        metrics::parseExposition("9bad_name 1\n", samples, &err));
    EXPECT_TRUE(metrics::parseExposition(
        "# HELP x h\n# TYPE x counter\nx 3\n", samples, &err));
    ASSERT_EQ(samples.size(), 1u);
    EXPECT_EQ(samples[0].value, 3.0);
}

// ---------------------------------------------------------------
// CPI-stack exhaustiveness (tick + event, N=1 and N=2).
// ---------------------------------------------------------------

struct CpiRun
{
    std::vector<CpiStack> stacks;
    std::vector<SimResult> results;
};

CpiRun
runWithCpi(unsigned n_cores, RunMode mode, DefenseMode defense,
           const CoreParams &base,
           const std::vector<std::string> &streams,
           const std::vector<bool> &is_attack)
{
    MultiCoreParams mp;
    mp.numCores = n_cores;
    mp.core = base;
    mp.core.runMode = mode;
    MultiCore machine(mp);
    machine.enableCpi();
    std::vector<std::unique_ptr<InstStream>> owned;
    std::vector<InstStream *> ptrs;
    for (unsigned i = 0; i < n_cores; ++i) {
        machine.core(i).setDefenseMode(defense);
        owned.push_back(
            is_attack[i]
                ? AttackRegistry::create(streams[i], 3, 6000)
                : WorkloadRegistry::create(streams[i], 3, 6000));
        ptrs.push_back(owned.back().get());
    }
    CpiRun out;
    out.results = machine.run(ptrs);
    for (unsigned i = 0; i < n_cores; ++i)
        out.stacks.push_back(*machine.cpiStack(i));
    return out;
}

TEST(CpiStackTest, ExhaustiveAcrossRandomConfigsBothModes)
{
    // Randomized-but-reproducible core configs: the exhaustiveness
    // property (sum of buckets == run cycles) must hold for every
    // shape, not just the Table II default.
    std::mt19937_64 rng(0xc91);
    const std::vector<std::pair<std::string, bool>> cases = {
        {"compress", false}, {"fft", false},
        {"spectre-pht", true}, {"meltdown", true},
    };
    const DefenseMode defenses[] = {
        DefenseMode::None,
        DefenseMode::FenceSpectre,
        DefenseMode::InvisiSpecFuturistic,
    };
    for (int trial = 0; trial < 6; ++trial) {
        CoreParams p;
        p.robEntries = 64u << (rng() % 3);       // 64/128/256
        p.issueWidth = (rng() % 2) ? 4 : 8;
        p.dcacheMshrs = (rng() % 2) ? 8 : 20;
        p.squashRecoveryCycles = 2 + (unsigned)(rng() % 4);
        const auto &c = cases[trial % cases.size()];
        DefenseMode d = defenses[trial % 3];
        for (RunMode mode :
             {RunMode::TickLoop, RunMode::EventDriven}) {
            CpiRun r = runWithCpi(1, mode, d, p, {c.first},
                                  {c.second});
            EXPECT_EQ(r.stacks[0].cycles(), r.results[0].cycles)
                << c.first << " trial " << trial << " mode "
                << (int)mode;
            EXPECT_GT(r.stacks[0].value(CpiBucket::Base), 0u);
        }
    }
}

TEST(CpiStackTest, TickAndEventAttributeIdentically)
{
    const std::vector<std::pair<std::string, bool>> cases = {
        {"compress", false},  {"eventsim", false},
        {"spectre-pht", true}, {"flush-reload", true},
    };
    for (const auto &c : cases) {
        for (DefenseMode d : {DefenseMode::None,
                              DefenseMode::InvisiSpecFuturistic}) {
            CoreParams p;
            CpiRun tick = runWithCpi(1, RunMode::TickLoop, d, p,
                                     {c.first}, {c.second});
            CpiRun event = runWithCpi(1, RunMode::EventDriven, d, p,
                                      {c.first}, {c.second});
            for (size_t b = 0; b < kNumCpiBuckets; ++b) {
                EXPECT_EQ(tick.stacks[0].value((CpiBucket)b),
                          event.stacks[0].value((CpiBucket)b))
                    << c.first << "/" << (int)d << " bucket "
                    << cpiBucketName((CpiBucket)b);
            }
        }
    }
}

TEST(CpiStackTest, ExhaustiveOnTwoCoreCoherentMachine)
{
    CoreParams p;
    for (RunMode mode : {RunMode::TickLoop, RunMode::EventDriven}) {
        CpiRun r = runWithCpi(2, mode, DefenseMode::None, p,
                              {"prime-probe", "compress"},
                              {true, false});
        CpiStack total;
        uint64_t total_cycles = 0;
        for (unsigned i = 0; i < 2; ++i) {
            EXPECT_EQ(r.stacks[i].cycles(), r.results[i].cycles)
                << "core " << i << " mode " << (int)mode;
            total.merge(r.stacks[i]);
            total_cycles += r.results[i].cycles;
        }
        total.assertExhaustive(total_cycles); // fatal()s on escape
    }
}

TEST(CpiStackTest, GoldenDigestsUnchangedWithAccountingAttached)
{
    // Spot-check here (the full 22-case sweep lives in
    // test_golden.cc): attaching a stack must not perturb a single
    // counter bit.
    size_t count = 0;
    const CoreCase *cases = goldenCoreCases(count);
    ASSERT_EQ(count, 22u);
    for (size_t i : {size_t(0), size_t(5), size_t(13)}) {
        const CoreCase &c = cases[i];
        CounterRegistry reg;
        CoreParams params;
        O3Core core(params, reg);
        core.setDefenseMode(c.mode);
        CpiStack cpi;
        core.attachCpiStack(&cpi);
        Sampler sampler(reg, 1000);
        sampler.setNormalizeEnabled(false);
        core.attachSampler(&sampler);
        auto stream =
            c.attack ? AttackRegistry::create(c.stream, 3, 6000)
                     : WorkloadRegistry::create(c.stream, 3, 6000);
        SimResult res = core.run(*stream);
        std::vector<double> snap = reg.snapshot();
        uint64_t h = hashDoubles(kFnvSeed, snap.data(), snap.size());
        h = hashSimResult(h, res);
        h = hashU64(h, sampler.windowsClosed());
        expectDigest(h, c.pinned, c.stream);
        EXPECT_EQ(cpi.cycles(), res.cycles);
    }
}

// ---------------------------------------------------------------
// Per-window CPI deltas on the timeline.
// ---------------------------------------------------------------

TEST(CpiStackTest, WindowDeltasCoverEveryCycleOfEveryWindow)
{
    CounterRegistry reg;
    CoreParams params;
    O3Core core(params, reg);
    core.setDefenseMode(DefenseMode::InvisiSpecSpectre);
    CpiStack cpi;
    core.attachCpiStack(&cpi);
    Timeline tl;
    TimelineSamplerConfig tc;
    tc.intervalInsts = 500;
    TimelineSampler ts(reg, tl, tc);
    cpi.registerTimeline(ts);
    core.attachTimelineSampler(&ts);
    auto stream = AttackRegistry::create("spectre-pht", 3, 8100);
    SimResult res = core.run(*stream);
    ts.finish(core.committedInsts(), core.cycle());

    std::vector<const TimelineSeries *> series;
    for (size_t b = 0; b < kNumCpiBuckets; ++b) {
        const TimelineSeries *s = tl.findSeries(
            std::string("cpi.") + cpiBucketName((CpiBucket)b));
        ASSERT_NE(s, nullptr);
        series.push_back(s);
    }
    const size_t windows = series[0]->points.size();
    ASSERT_GT(windows, 2u);
    uint64_t prev_cycle = 0;
    uint64_t covered = 0;
    for (size_t w = 0; w < windows; ++w) {
        uint64_t window_sum = 0;
        for (const TimelineSeries *s : series) {
            ASSERT_EQ(s->points.size(), windows);
            window_sum += (uint64_t)s->points[w].value;
        }
        uint64_t span = series[0]->points[w].cycle - prev_cycle;
        EXPECT_EQ(window_sum, span) << "window " << w;
        prev_cycle = series[0]->points[w].cycle;
        covered += window_sum;
    }
    EXPECT_EQ(cpi.cycles(), res.cycles);
    // finish() only closes on instruction progress; when the last
    // commit landed exactly on a sample boundary the post-commit
    // drain cycles stay uncovered. Otherwise the final partial
    // window runs to the end of the run.
    if (res.committedInsts % tc.intervalInsts != 0) {
        EXPECT_EQ(series[0]->points.back().cycle, res.cycles);
        EXPECT_EQ(covered, res.cycles);
    } else {
        EXPECT_LE(covered, res.cycles);
    }
}

} // anonymous namespace
} // namespace evax
