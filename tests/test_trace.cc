/**
 * @file
 * Structured event trace tests: ring wraparound, category gating,
 * stitching across pool workers, JSONL rendering, and the
 * compiled-out zero-overhead contract.
 */

#include <algorithm>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "util/parallel.hh"
#include "util/trace.hh"

using namespace evax;

namespace
{

/** Reset mask + rings so tests don't see each other's records. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        trace::clear();
        trace::setMask(0);
    }

    void
    TearDown() override
    {
        trace::setMask(0);
        trace::clear();
    }
};

} // anonymous namespace

TEST_F(TraceTest, RecordIsFixedSizePod)
{
    static_assert(std::is_trivially_copyable<trace::Record>::value,
                  "trace records must stay POD");
    // 3x u64 + 2 pointers + u32 (padded): the record must stay one
    // small fixed-size struct so the ring is cache-friendly.
    EXPECT_LE(sizeof(trace::Record), 48u);
}

TEST_F(TraceTest, ParseMaskKnownCategories)
{
    uint32_t mask = 0;
    EXPECT_TRUE(trace::parseMask("core", mask));
    EXPECT_EQ(mask, (uint32_t)trace::CatCore);

    EXPECT_TRUE(trace::parseMask("core,cache,detect", mask));
    EXPECT_EQ(mask, (uint32_t)(trace::CatCore | trace::CatCache |
                               trace::CatDetect));

    EXPECT_TRUE(trace::parseMask("all", mask));
    EXPECT_EQ(mask, (uint32_t)trace::CatAll);

    EXPECT_FALSE(trace::parseMask("core,nonsense", mask));
    EXPECT_FALSE(trace::parseMask("", mask));
}

TEST_F(TraceTest, CategoryNamesRoundTrip)
{
    for (trace::Category cat :
         {trace::CatCore, trace::CatCache, trace::CatMem,
          trace::CatBp, trace::CatTlb, trace::CatDram,
          trace::CatDetect, trace::CatDefense, trace::CatBench}) {
        uint32_t mask = 0;
        ASSERT_TRUE(trace::parseMask(trace::categoryName(cat),
                                     mask));
        EXPECT_EQ(mask, (uint32_t)cat);
    }
}

#if EVAX_TRACE_ENABLED

TEST_F(TraceTest, MaskGatesRecording)
{
    EXPECT_FALSE(trace::categoryEnabled(trace::CatCore));
    EVAX_TRACE_EVENT(trace::CatCore, "t", "masked", 1, 2);
    EXPECT_EQ(trace::snapshot().size(), 0u);

    trace::setMask(trace::CatCore);
    EXPECT_TRUE(trace::categoryEnabled(trace::CatCore));
    EXPECT_FALSE(trace::categoryEnabled(trace::CatCache));
    EVAX_TRACE_EVENT(trace::CatCore, "t", "kept", 1, 2);
    EVAX_TRACE_EVENT(trace::CatCache, "t", "dropped", 1, 2);

    std::vector<trace::Record> recs = trace::snapshot();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_STREQ(recs[0].event, "kept");
    EXPECT_EQ(recs[0].category, (uint32_t)trace::CatCore);
}

TEST_F(TraceTest, RecordFieldsPreserved)
{
    trace::setMask(trace::CatDram);
    trace::record(trace::CatDram, "dram", "rowhammer.flip", 12345,
                  0xdeadbeefull);
    std::vector<trace::Record> recs = trace::snapshot();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].cycle, 12345u);
    EXPECT_EQ(recs[0].arg, 0xdeadbeefull);
    EXPECT_STREQ(recs[0].component, "dram");
    EXPECT_STREQ(recs[0].event, "rowhammer.flip");
}

TEST_F(TraceTest, WraparoundKeepsNewestRecords)
{
    trace::setRingCapacity(8);
    trace::clear(); // re-create this thread's ring at capacity 8
    trace::setMask(trace::CatCore);
    for (uint64_t i = 0; i < 20; ++i)
        trace::record(trace::CatCore, "t", "e", i, i);

    EXPECT_EQ(trace::totalRecorded(), 20u);
    std::vector<trace::Record> recs = trace::snapshot();
    ASSERT_EQ(recs.size(), 8u);
    // Oldest records overwritten: args 12..19 survive, in order.
    for (size_t i = 0; i < recs.size(); ++i)
        EXPECT_EQ(recs[i].arg, 12 + i);

    trace::setRingCapacity(1u << 14);
    trace::clear();
}

TEST_F(TraceTest, InternedNamesStable)
{
    std::string name = "dcache";
    const char *a = trace::internName(name);
    name[0] = 'X'; // interned copy must not alias the argument
    const char *b = trace::internName("dcache");
    EXPECT_EQ(a, b);
    EXPECT_STREQ(a, "dcache");
}

TEST_F(TraceTest, InternNameIsThreadSafe)
{
    // Pool workers intern the same and distinct names concurrently
    // (the Perfetto re-hydration path in evax_inspect does exactly
    // this). Pointers for equal strings must converge and stay
    // stable; runs under the tsan ctest label.
    constexpr size_t kJobs = 64;
    std::vector<const char *> shared(kJobs);
    std::vector<const char *> distinct(kJobs);
    parallelFor(kJobs, [&](size_t i) {
        shared[i] = trace::internName("intern.shared");
        distinct[i] =
            trace::internName("intern.n" + std::to_string(i % 8));
    });
    for (size_t i = 0; i < kJobs; ++i) {
        EXPECT_EQ(shared[i], shared[0]);
        EXPECT_STREQ(shared[i], "intern.shared");
        EXPECT_EQ(distinct[i],
                  trace::internName("intern.n" +
                                    std::to_string(i % 8)));
    }
}

TEST_F(TraceTest, SnapshotOrderedBySeq)
{
    trace::setMask(trace::CatCore | trace::CatBench);
    for (uint64_t i = 0; i < 50; ++i) {
        trace::record(i % 2 ? trace::CatCore : trace::CatBench, "t",
                      "e", i, i);
    }
    std::vector<trace::Record> recs = trace::snapshot();
    ASSERT_EQ(recs.size(), 50u);
    for (size_t i = 1; i < recs.size(); ++i)
        EXPECT_LT(recs[i - 1].seq, recs[i].seq);
}

TEST_F(TraceTest, ParallelRecordingLosesNothing)
{
    // Workers record concurrently into per-thread rings; the stitch
    // must surface every record exactly once. Also the tsan-label
    // proof that recording races with nothing.
    trace::setMask(trace::CatBench);
    constexpr size_t kJobs = 64, kPerJob = 16;
    parallelFor(kJobs, [](size_t i) {
        for (size_t j = 0; j < kPerJob; ++j) {
            trace::record(trace::CatBench, "worker", "tick",
                          /*cycle=*/i, /*arg=*/i * kPerJob + j);
        }
    });

    std::vector<trace::Record> recs = trace::snapshot();
    ASSERT_EQ(recs.size(), kJobs * kPerJob);
    EXPECT_EQ(trace::totalRecorded(), kJobs * kPerJob);
    std::set<uint64_t> args;
    for (const auto &r : recs)
        args.insert(r.arg);
    EXPECT_EQ(args.size(), kJobs * kPerJob); // no dup, no loss
}

TEST_F(TraceTest, SerialAndParallelDumpsAgree)
{
    // The stitched record *set* must not depend on the thread count
    // (per-thread interleavings differ, content must not).
    auto run = [](unsigned lanes) {
        setGlobalThreadCount(lanes);
        trace::clear();
        trace::setMask(trace::CatBench);
        parallelFor(32, [](size_t i) {
            trace::record(trace::CatBench, "worker", "tick", i, i);
        });
        std::vector<uint64_t> args;
        for (const auto &r : trace::snapshot())
            args.push_back(r.arg);
        std::sort(args.begin(), args.end());
        return args;
    };
    std::vector<uint64_t> serial = run(1);
    std::vector<uint64_t> parallel4 = run(4);
    EXPECT_EQ(serial, parallel4);
    setGlobalThreadCount(1);
}

TEST_F(TraceTest, JsonlOneValidObjectPerRecord)
{
    trace::setMask(trace::CatDetect);
    trace::record(trace::CatDetect, "detector", "flag", 7, 3);
    trace::record(trace::CatDetect, "detector.context",
                  "sys.leaks", 7, 11);

    std::ostringstream os;
    trace::writeJsonl(os);
    std::istringstream is(os.str());
    std::string line;
    size_t lines = 0;
    while (std::getline(is, line)) {
        ++lines;
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"seq\":"), std::string::npos);
        EXPECT_NE(line.find("\"cycle\":"), std::string::npos);
        EXPECT_NE(line.find("\"cat\":\"detect\""),
                  std::string::npos);
        EXPECT_NE(line.find("\"component\":"), std::string::npos);
        EXPECT_NE(line.find("\"event\":"), std::string::npos);
        EXPECT_NE(line.find("\"arg\":"), std::string::npos);
    }
    EXPECT_EQ(lines, 2u);
}

TEST_F(TraceTest, ClearDropsBufferedRecords)
{
    trace::setMask(trace::CatCore);
    trace::record(trace::CatCore, "t", "e", 1, 1);
    ASSERT_EQ(trace::snapshot().size(), 1u);
    trace::clear();
    EXPECT_EQ(trace::snapshot().size(), 0u);
}

#else // !EVAX_TRACE_ENABLED

TEST_F(TraceTest, CompiledOutHooksAreNoOps)
{
    EXPECT_FALSE(trace::compiledIn());
    trace::setMask(trace::CatAll);
    EXPECT_EQ(trace::mask(), 0u);
    EXPECT_FALSE(trace::categoryEnabled(trace::CatCore));
    EVAX_TRACE_EVENT(trace::CatCore, "t", "e", 1, 2);
    trace::record(trace::CatCore, "t", "e", 1, 2);
    EXPECT_EQ(trace::totalRecorded(), 0u);
    EXPECT_TRUE(trace::snapshot().empty());
    std::ostringstream os;
    trace::writeJsonl(os);
    EXPECT_TRUE(os.str().empty());
}

#endif // EVAX_TRACE_ENABLED
