/**
 * @file
 * Shared digest helpers for the golden-pin suites. test_golden.cc
 * pins these digests against constants in tick-loop mode;
 * test_equivalence.cc re-runs the same computations in the
 * event-driven and fast-forward execution modes and requires
 * byte-identical results. Keeping the hashing in one header
 * guarantees the two suites can never drift apart on *what* they
 * digest.
 */

#ifndef EVAX_TESTS_GOLDEN_UTIL_HH
#define EVAX_TESTS_GOLDEN_UTIL_HH

#include <gtest/gtest.h>

#include <cstring>
#include <iomanip>
#include <sstream>
#include <string>

#include "attacks/registry.hh"
#include "hpc/sampler.hh"
#include "ml/dataset.hh"
#include "sim/core.hh"
#include "sim/multicore.hh"
#include "workload/registry.hh"

namespace evax
{

constexpr uint64_t kFnvSeed = 0xcbf29ce484222325ULL;

/** FNV-1a over a stream of doubles (bit-exact, not approximate). */
inline uint64_t
hashDoubles(uint64_t h, const double *v, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        uint64_t bits;
        std::memcpy(&bits, &v[i], sizeof(bits));
        for (int b = 0; b < 8; ++b) {
            h ^= (bits >> (8 * b)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }
    return h;
}

inline uint64_t
hashU64(uint64_t h, uint64_t bits)
{
    for (int b = 0; b < 8; ++b) {
        h ^= (bits >> (8 * b)) & 0xff;
        h *= 0x100000001b3ULL;
    }
    return h;
}

inline uint64_t
hashDouble(uint64_t h, double v)
{
    return hashDoubles(h, &v, 1);
}

/** FNV-1a over a byte string (CSV-text digests). */
inline uint64_t
hashBytes(const std::string &bytes)
{
    uint64_t h = kFnvSeed;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Digest a SimResult's externally visible fields. */
inline uint64_t
hashSimResult(uint64_t h, const SimResult &r)
{
    h = hashU64(h, r.cycles);
    h = hashU64(h, r.committedInsts);
    h = hashU64(h, r.leaks);
    h = hashU64(h, r.firstLeakInst);
    h = hashU64(h, r.bitFlips);
    h = hashU64(h, r.squashes);
    h = hashU64(h, r.streamExhausted ? 1 : 0);
    return h;
}

inline uint64_t
datasetDigest(const Dataset &data)
{
    uint64_t h = kFnvSeed;
    for (const auto &s : data.samples) {
        h = hashDoubles(h, s.x.data(), s.x.size());
        h ^= (uint64_t)s.attackClass * 0x9e3779b97f4a7c15ULL;
        h ^= s.malicious ? 0x5bULL : 0xa4ULL;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** EXPECT with a hex print so re-pinning is copy-paste. */
inline void
expectDigest(uint64_t actual, uint64_t pinned, const char *label)
{
    EXPECT_EQ(actual, pinned)
        << label << " digest moved: actual 0x" << std::hex << actual
        << " (pinned 0x" << pinned << ")";
}

/**
 * The core-level counter digest: full counter register file +
 * SimResult + closed-window count for one stream under one defense
 * mode. The @p params overload is what the equivalence tier varies
 * (RunMode::EventDriven must reproduce the tick-loop digest bit
 * for bit).
 */
inline uint64_t
coreRunDigest(const std::string &stream_name, bool is_attack,
              DefenseMode mode, const CoreParams &params)
{
    CounterRegistry reg;
    O3Core core(params, reg);
    core.setDefenseMode(mode);
    Sampler sampler(reg, 1000);
    sampler.setNormalizeEnabled(false);
    core.attachSampler(&sampler);
    auto stream = is_attack
                      ? AttackRegistry::create(stream_name, 3, 6000)
                      : WorkloadRegistry::create(stream_name, 3,
                                                 6000);
    SimResult res = core.run(*stream);
    std::vector<double> snap = reg.snapshot();
    uint64_t h = hashDoubles(kFnvSeed, snap.data(), snap.size());
    h = hashSimResult(h, res);
    h = hashU64(h, sampler.windowsClosed());
    return h;
}

inline uint64_t
coreRunDigest(const std::string &stream_name, bool is_attack,
              DefenseMode mode)
{
    CoreParams params; // O3Core keeps a reference; must outlive it
    return coreRunDigest(stream_name, is_attack, mode, params);
}

/**
 * coreRunDigest with CPI-stack accounting attached
 * (sim/cpi_stack.hh). Accounting is observation-only by contract:
 * every pinned digest must stay byte-identical, and the stack must
 * remain exhaustive (@p cycles_out receives stack-sum and run
 * cycles for the caller to compare).
 */
inline uint64_t
cpiCoreRunDigest(const std::string &stream_name, bool is_attack,
                 DefenseMode mode, uint64_t &stack_cycles_out,
                 uint64_t &run_cycles_out)
{
    CoreParams params;
    CounterRegistry reg;
    O3Core core(params, reg);
    core.setDefenseMode(mode);
    CpiStack cpi;
    core.attachCpiStack(&cpi);
    Sampler sampler(reg, 1000);
    sampler.setNormalizeEnabled(false);
    core.attachSampler(&sampler);
    auto stream = is_attack
                      ? AttackRegistry::create(stream_name, 3, 6000)
                      : WorkloadRegistry::create(stream_name, 3,
                                                 6000);
    SimResult res = core.run(*stream);
    std::vector<double> snap = reg.snapshot();
    uint64_t h = hashDoubles(kFnvSeed, snap.data(), snap.size());
    h = hashSimResult(h, res);
    h = hashU64(h, sampler.windowsClosed());
    stack_cycles_out = cpi.cycles();
    run_cycles_out = res.cycles;
    return h;
}

/**
 * coreRunDigest driven through the MultiCore machine at
 * numCores == 1: identical construction (private uncore, same
 * counter-registry layout) plus the multi-core lockstep/idle-skip
 * driver. Every pinned golden digest must reproduce bit for bit —
 * the tentpole "N=1 is byte-identical" invariant.
 */
inline uint64_t
multiCoreRunDigest(const std::string &stream_name, bool is_attack,
                   DefenseMode mode, const CoreParams &params)
{
    MultiCoreParams mp;
    mp.numCores = 1;
    mp.core = params;
    MultiCore machine(mp);
    machine.core(0).setDefenseMode(mode);
    Sampler sampler(machine.counters(0), 1000);
    sampler.setNormalizeEnabled(false);
    machine.core(0).attachSampler(&sampler);
    auto stream = is_attack
                      ? AttackRegistry::create(stream_name, 3, 6000)
                      : WorkloadRegistry::create(stream_name, 3,
                                                 6000);
    std::vector<InstStream *> streams{stream.get()};
    std::vector<SimResult> res = machine.run(streams);
    std::vector<double> snap = machine.counters(0).snapshot();
    uint64_t h = hashDoubles(kFnvSeed, snap.data(), snap.size());
    h = hashSimResult(h, res[0]);
    h = hashU64(h, sampler.windowsClosed());
    return h;
}

/** The stream x defense-mode cases the core digests pin. */
struct CoreCase
{
    const char *stream;
    bool attack;
    DefenseMode mode;
    uint64_t pinned;
};

/** 5 benign + 8 attack + 9 defense combos = the 22 pinned core
 *  digests shared by test_golden.cc and test_equivalence.cc. */
inline const CoreCase *
goldenCoreCases(size_t &count)
{
    static const CoreCase cases[] = {
        {"compress", false, DefenseMode::None, 0x6b84392a76f46220ULL},
        {"fft", false, DefenseMode::None, 0xa7156221cc8bec08ULL},
        {"linalg", false, DefenseMode::None, 0x55d3709835d2b8f8ULL},
        {"eventsim", false, DefenseMode::None, 0x88da3a8a882f5bd8ULL},
        {"sort", false, DefenseMode::None, 0x55e4be3da17fde88ULL},
        {"spectre-pht", true, DefenseMode::None, 0x828d0b846d7baa20ULL},
        {"spectre-stl", true, DefenseMode::None, 0x56c7208d509cc5d2ULL},
        {"meltdown", true, DefenseMode::None, 0x6906cd11ab964df7ULL},
        {"lvi", true, DefenseMode::None, 0x7077dffbc0289e39ULL},
        {"rowhammer", true, DefenseMode::None, 0x6dc0e0138d1984caULL},
        {"smotherspectre", true, DefenseMode::None, 0x555b4d343d0260c5ULL},
        {"flush-reload", true, DefenseMode::None, 0xbd0d4bda7f0f5359ULL},
        {"medusa-shadow-rep", true, DefenseMode::None, 0xeea05e9305907f83ULL},
        {"compress", false, DefenseMode::FenceSpectre, 0xf49a9e7110b0f661ULL},
        {"compress", false, DefenseMode::FenceFuturistic, 0x140e6b1e8ac1ccc1ULL},
        {"compress", false, DefenseMode::InvisiSpecSpectre, 0xc07b4475b3f6f794ULL},
        {"compress", false, DefenseMode::InvisiSpecFuturistic,
         0xfdd1eb1b4575ec67ULL},
        {"spectre-pht", true, DefenseMode::FenceSpectre, 0x2028aa15c60c5479ULL},
        {"spectre-pht", true, DefenseMode::FenceFuturistic, 0x126daac6865fb9e0ULL},
        {"spectre-pht", true, DefenseMode::InvisiSpecSpectre,
         0x1153b060c17663feULL},
        {"spectre-pht", true, DefenseMode::InvisiSpecFuturistic,
         0x8cfd36e8c984787eULL},
        {"meltdown", true, DefenseMode::InvisiSpecFuturistic,
         0x5769607e58486f7bULL},
    };
    count = sizeof(cases) / sizeof(cases[0]);
    return cases;
}

} // namespace evax

#endif // EVAX_TESTS_GOLDEN_UTIL_HH
