/**
 * @file
 * Batched-scoring and fleet-serving properties (docs/SERVING.md):
 * every scoreBatch/flagBatch kernel must bit-match the scalar
 * detector path at any batch size, sharded scoring must be
 * byte-identical at any thread count, and the evax_serve replay
 * summary must be deterministic.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/serve.hh"
#include "detect/batch.hh"
#include "detect/evax_detector.hh"
#include "detect/hardened.hh"
#include "detect/perspectron.hh"
#include "hpc/window_batch.hh"
#include "ml/mlp.hh"
#include "ml/perceptron.hh"
#include "util/parallel.hh"

using namespace evax;

namespace
{

/** Batch sizes exercising remainder rows, blocks, and sharding. */
const size_t kBatchSizes[] = {1, 7, 4096};

WindowBatch
randomBatch(size_t rows, size_t width, uint64_t seed)
{
    WindowBatch batch(width);
    batch.reserve(rows);
    Rng rng(seed);
    std::vector<double> row(width);
    for (size_t r = 0; r < rows; ++r) {
        for (auto &v : row)
            v = rng.nextDouble();
        batch.append(row);
    }
    return batch;
}

/** The serving fixture is expensive; build it once per process. */
const ServeSetup &
quickSetup()
{
    static ServeConfig cfg = [] {
        ServeConfig c;
        c.tenants = 512;
        c.attackFraction = 0.05;
        return c;
    }();
    static ServeSetup setup = buildServeSetup(cfg);
    return setup;
}

ServeConfig
quickConfig()
{
    ServeConfig c;
    c.tenants = 512;
    c.attackFraction = 0.05;
    return c;
}

} // anonymous namespace

TEST(WindowBatch, AppendTruncatesAndZeroPads)
{
    WindowBatch batch(4);
    batch.append({1.0, 2.0});               // pad
    batch.append({1.0, 2.0, 3.0, 4.0, 5.0}); // truncate
    ASSERT_EQ(batch.rows(), 2u);
    EXPECT_EQ(batch.rowVector(0),
              (std::vector<double>{1.0, 2.0, 0.0, 0.0}));
    EXPECT_EQ(batch.rowVector(1),
              (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(WindowBatch, DigestChainsAcrossSplits)
{
    WindowBatch batch = randomBatch(100, 9, 11);
    uint64_t whole =
        batchDigest(batch.data(), batch.rows() * batch.width());
    // Chaining the digest over any split of the rows reproduces
    // the whole-stream digest (the serve summary relies on this
    // for batch-size invariance).
    for (size_t cut : {1u, 37u, 99u}) {
        uint64_t h = batchDigest(batch.data(), cut * 9);
        h = batchDigest(batch.row(cut), (100 - cut) * 9, h);
        EXPECT_EQ(h, whole) << "cut at " << cut;
    }
}

TEST(ScoreBatch, PerceptronBitMatchesScalar)
{
    Perceptron model(145, 5);
    for (size_t rows : kBatchSizes) {
        WindowBatch batch = randomBatch(rows, 145, rows);
        std::vector<double> out(rows);
        model.scoreBatch(batch.data(), rows, 145, out.data());
        for (size_t r = 0; r < rows; ++r) {
            EXPECT_EQ(out[r], model.score(batch.rowVector(r)))
                << "row " << r << " of " << rows;
        }
    }
}

TEST(ScoreBatch, MlpBitMatchesForward)
{
    Mlp net({12, 8, 1}, Activation::Relu, Activation::Sigmoid, 3);
    for (size_t rows : kBatchSizes) {
        WindowBatch batch = randomBatch(rows, 12, rows + 1);
        std::vector<double> out(rows);
        net.scoreBatch(batch.data(), rows, 12, out.data());
        for (size_t r = 0; r < rows; ++r) {
            EXPECT_EQ(out[r], net.forward(batch.rowVector(r))[0])
                << "row " << r << " of " << rows;
        }
    }
}

TEST(ScoreBatch, PerSpectronBitMatchesScalar)
{
    PerSpectron det(9);
    for (size_t rows : kBatchSizes) {
        WindowBatch batch =
            randomBatch(rows, FeatureCatalog::numBase, rows + 2);
        std::vector<double> out;
        det.scoreAll(batch, out);
        for (size_t r = 0; r < rows; ++r)
            EXPECT_EQ(out[r], det.score(batch.rowVector(r)));
    }
}

TEST(ScoreBatch, EvaxBitMatchesScalar)
{
    EvaxDetector det;
    for (size_t rows : kBatchSizes) {
        WindowBatch batch =
            randomBatch(rows, FeatureCatalog::numBase, rows + 3);
        std::vector<double> scores;
        std::vector<uint8_t> flags;
        det.scoreAll(batch, scores);
        det.flagAll(batch, flags);
        for (size_t r = 0; r < rows; ++r) {
            auto row = batch.rowVector(r);
            EXPECT_EQ(scores[r], det.score(row));
            EXPECT_EQ(flags[r] != 0, det.flag(row));
        }
    }
}

TEST(ScoreBatch, EvaxNarrowRowsUseExpandPath)
{
    // Rows narrower than numBase exercise the zero-padding branch
    // (the fused kernel requires full-width rows).
    EvaxDetector det;
    WindowBatch batch = randomBatch(33, 100, 17);
    std::vector<double> scores;
    det.scoreAll(batch, scores);
    for (size_t r = 0; r < batch.rows(); ++r)
        EXPECT_EQ(scores[r], det.score(batch.rowVector(r)));
}

TEST(ScoreBatch, ExpandBatchMatchesExpandInto)
{
    EvaxDetector det;
    WindowBatch batch =
        randomBatch(40, FeatureCatalog::numBase, 23);
    WindowBatch expanded;
    det.expandBatch(batch, 5, 40, expanded);
    ASSERT_EQ(expanded.rows(), 35u);
    ASSERT_EQ(expanded.width(),
              FeatureCatalog::numBase + det.engineered().size());
    for (size_t r = 5; r < 40; ++r) {
        EXPECT_EQ(expanded.rowVector(r - 5),
                  det.expand(batch.rowVector(r)));
    }
}

TEST(ScoreBatch, FlagBatchUpdatesCounters)
{
    EvaxDetector det;
    WindowBatch batch =
        randomBatch(64, FeatureCatalog::numBase, 29);
    std::vector<uint8_t> flags;
    det.flagAll(batch, flags);
    uint64_t raised = 0;
    for (uint8_t f : flags)
        raised += f;
    EXPECT_EQ(det.windowsScored(), 64u);
    EXPECT_EQ(det.flagsRaised(), raised);
}

TEST(ScoreBatch, StochasticBitMatchesScalar)
{
    auto inner = std::make_unique<EvaxDetector>();
    StochasticDetector det(std::move(inner), StochasticConfig{});
    for (size_t rows : kBatchSizes) {
        WindowBatch batch =
            randomBatch(rows, FeatureCatalog::numBase, rows + 4);
        std::vector<double> scores;
        std::vector<uint8_t> flags;
        det.scoreAll(batch, scores);
        det.flagAll(batch, flags);
        for (size_t r = 0; r < rows; ++r) {
            auto row = batch.rowVector(r);
            EXPECT_EQ(scores[r], det.score(row));
            EXPECT_EQ(flags[r] != 0, det.flag(row));
        }
    }
}

TEST(ScoreBatch, EnsembleBitMatchesScalar)
{
    EnsembleConfig cfg;
    cfg.members = 3;
    cfg.stochasticSigma = 0.05;
    DetectorEnsemble det(cfg);
    for (size_t rows : kBatchSizes) {
        WindowBatch batch =
            randomBatch(rows, FeatureCatalog::numBase, rows + 5);
        std::vector<double> scores;
        std::vector<uint8_t> flags;
        det.scoreAll(batch, scores);
        det.flagAll(batch, flags);
        for (size_t r = 0; r < rows; ++r) {
            auto row = batch.rowVector(r);
            EXPECT_EQ(scores[r], det.score(row));
            EXPECT_EQ(flags[r] != 0, det.flag(row));
        }
    }
}

TEST(ScoreBatch, ShardedIdenticalAtAnyThreadCount)
{
    EvaxDetector det;
    WindowBatch batch =
        randomBatch(10000, FeatureCatalog::numBase, 31);

    setGlobalThreadCount(1);
    std::vector<double> serial_scores;
    std::vector<uint8_t> serial_flags;
    scoreBatchSharded(det, batch, serial_scores, 512);
    flagBatchSharded(det, batch, serial_flags, 512);

    for (unsigned threads : {2u, 4u}) {
        setGlobalThreadCount(threads);
        std::vector<double> scores;
        std::vector<uint8_t> flags;
        scoreBatchSharded(det, batch, scores, 512);
        flagBatchSharded(det, batch, flags, 512);
        EXPECT_EQ(scores, serial_scores)
            << threads << " threads";
        EXPECT_EQ(flags, serial_flags) << threads << " threads";
    }
    setGlobalThreadCount(defaultThreadCount());
}

TEST(Serve, FillBatchIndependentOfBatchBoundaries)
{
    ServeConfig cfg = quickConfig();
    const ServeSetup &setup = quickSetup();
    WindowBatch whole;
    fillServeBatch(cfg, setup.bank, 0, 300, whole);
    WindowBatch part;
    fillServeBatch(cfg, setup.bank, 128, 192, part);
    for (size_t r = 0; r < part.rows(); ++r)
        EXPECT_EQ(part.rowVector(r), whole.rowVector(128 + r));
}

TEST(Serve, SummaryCsvByteIdenticalSerialVsFourThreads)
{
    ServeConfig cfg = quickConfig();
    const ServeSetup &setup = quickSetup();

    setGlobalThreadCount(1);
    ServeResult serial = runServe(cfg, setup);
    std::ostringstream serial_csv;
    serial.summaryTable().writeCsv(serial_csv);

    setGlobalThreadCount(4);
    ServeResult threaded = runServe(cfg, setup);
    std::ostringstream threaded_csv;
    threaded.summaryTable().writeCsv(threaded_csv);
    setGlobalThreadCount(defaultThreadCount());

    EXPECT_EQ(serial_csv.str(), threaded_csv.str());
    EXPECT_EQ(serial.scoreDigest, threaded.scoreDigest);
    EXPECT_EQ(serial.flagDigest, threaded.flagDigest);
}

TEST(Serve, DigestsInvariantToBatchSize)
{
    ServeConfig cfg = quickConfig();
    const ServeSetup &setup = quickSetup();
    ServeResult base = runServe(cfg, setup);
    for (size_t rows : {64u, 1000u, 100000u}) {
        ServeConfig alt = cfg;
        alt.batchRows = rows;
        ServeResult res = runServe(alt, setup);
        EXPECT_EQ(res.scoreDigest, base.scoreDigest)
            << "batchRows " << rows;
        EXPECT_EQ(res.flagDigest, base.flagDigest)
            << "batchRows " << rows;
        EXPECT_EQ(res.flags, base.flags) << "batchRows " << rows;
    }
}

TEST(Serve, ReplayDetectsAttackTenants)
{
    ServeConfig cfg = quickConfig();
    const ServeSetup &setup = quickSetup();
    ServeResult res = runServe(cfg, setup);
    EXPECT_EQ(res.windows,
              cfg.tenants * cfg.windowsPerTenant);
    ASSERT_GT(res.attackWindows, 0u);
    uint64_t benign_windows = res.windows - res.attackWindows;
    double detection =
        (double)res.attackFlags / (double)res.attackWindows;
    double fpr =
        (double)res.benignFlags / (double)benign_windows;
    EXPECT_GE(detection, 0.8);
    EXPECT_LE(fpr, 0.05);
}

TEST(Serve, SummaryTableListsDeterministicMetricsOnly)
{
    ServeResult res;
    res.detectorName = "evax";
    Table t = res.summaryTable();
    for (const auto &row : t.rows()) {
        EXPECT_EQ(row[0].find("seconds"), std::string::npos);
        EXPECT_EQ(row[0].find("_us"), std::string::npos);
        EXPECT_EQ(row[0].find("per_sec"), std::string::npos);
    }
}

