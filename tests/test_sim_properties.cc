/**
 * @file
 * Property sweeps over core configurations: for any reasonable
 * CoreParams, the machine must make progress, commit exactly the
 * stream, never leak on benign work, and respect resource-scaling
 * monotonicities (bigger ROB -> no slower; smaller ROB -> shorter
 * transient window).
 */

#include <gtest/gtest.h>

#include "attacks/registry.hh"
#include "sim/core.hh"
#include "workload/registry.hh"

namespace evax
{
namespace
{

struct ConfigCase
{
    const char *label;
    unsigned rob;
    unsigned width;
    unsigned lq;
    unsigned iq;
};

class CoreConfigs : public ::testing::TestWithParam<ConfigCase>
{
  protected:
    CoreParams
    params() const
    {
        CoreParams p;
        const ConfigCase &c = GetParam();
        p.robEntries = c.rob;
        p.fetchWidth = p.dispatchWidth = p.issueWidth =
            p.commitWidth = c.width;
        p.lqEntries = p.sqEntries = c.lq;
        p.iqEntries = c.iq;
        return p;
    }
};

TEST_P(CoreConfigs, BenignKernelCommitsEverything)
{
    CoreParams p = params();
    CounterRegistry reg;
    O3Core core(p, reg);
    auto wl = WorkloadRegistry::create("compress", 3, 8000);
    SimResult res = core.run(*wl);
    EXPECT_GE(res.committedInsts, 8000u);
    EXPECT_TRUE(res.streamExhausted);
    EXPECT_EQ(res.leaks, 0u);
}

TEST_P(CoreConfigs, AttackRunsWithoutDeadlock)
{
    CoreParams p = params();
    CounterRegistry reg;
    O3Core core(p, reg);
    auto atk = AttackRegistry::create("meltdown", 3, 8000);
    SimResult res = core.run(*atk);
    EXPECT_GT(res.committedInsts, 4000u);
}

TEST_P(CoreConfigs, DefensesNeverLeakRegardlessOfGeometry)
{
    for (DefenseMode m : {DefenseMode::FenceFuturistic,
                          DefenseMode::InvisiSpecFuturistic}) {
        CoreParams p = params();
        CounterRegistry reg;
        O3Core core(p, reg);
        core.setDefenseMode(m);
        auto atk = AttackRegistry::create("spectre-pht", 3, 8000);
        SimResult res = core.run(*atk);
        EXPECT_EQ(res.leaks, 0u)
            << GetParam().label << " " << defenseModeName(m);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CoreConfigs,
    ::testing::Values(
        ConfigCase{"tiny", 32, 2, 8, 16},
        ConfigCase{"small", 64, 4, 16, 32},
        ConfigCase{"table2", 192, 8, 32, 64},
        ConfigCase{"wide", 256, 8, 48, 96},
        ConfigCase{"huge", 384, 8, 64, 128}),
    [](const ::testing::TestParamInfo<ConfigCase> &info) {
        return info.param.label;
    });

TEST(CoreScaling, BiggerRobDoesNotHurtIlp)
{
    auto ipc_with_rob = [](unsigned rob) {
        CoreParams p;
        p.robEntries = rob;
        CounterRegistry reg;
        O3Core core(p, reg);
        auto wl = WorkloadRegistry::create("linalg", 3, 15000);
        return core.run(*wl).ipc();
    };
    double small = ipc_with_rob(32);
    double large = ipc_with_rob(256);
    EXPECT_GE(large, small * 0.95);
}

TEST(CoreScaling, SmallRobShrinksTransientWindow)
{
    // Paper Sec. I: the transient window is bounded by the ROB; a
    // small ROB defeats evasion attempts that need a long window.
    auto leaks_with_rob = [](unsigned rob) {
        CoreParams p;
        p.robEntries = rob;
        CounterRegistry reg;
        O3Core core(p, reg);
        auto atk = AttackRegistry::create("spectre-pht", 3, 25000);
        return core.run(*atk).leaks;
    };
    uint64_t small = leaks_with_rob(24);
    uint64_t large = leaks_with_rob(192);
    EXPECT_LE(small, large);
}

TEST(CoreScaling, NarrowMachineIsSlower)
{
    auto ipc_with_width = [](unsigned w) {
        CoreParams p;
        p.fetchWidth = p.dispatchWidth = p.issueWidth =
            p.commitWidth = w;
        CounterRegistry reg;
        O3Core core(p, reg);
        auto wl = WorkloadRegistry::create("eventsim", 3, 15000);
        return core.run(*wl).ipc();
    };
    EXPECT_GT(ipc_with_width(8), ipc_with_width(1));
}

TEST(CoreScaling, SamplerIntervalCountsWindows)
{
    for (uint64_t interval : {100ULL, 1000ULL, 5000ULL}) {
        CoreParams p;
        CounterRegistry reg;
        O3Core core(p, reg);
        Sampler sampler(reg, interval);
        core.attachSampler(&sampler);
        uint64_t windows = 0;
        core.setSampleCallback(
            [&](const FeatureSnapshot &) { ++windows; });
        auto wl = WorkloadRegistry::create("fft", 3, 20000);
        SimResult res = core.run(*wl);
        uint64_t expected = res.committedInsts / interval;
        EXPECT_NEAR((double)windows, (double)expected, 2.0)
            << "interval " << interval;
    }
}

} // anonymous namespace
} // namespace evax
