/**
 * @file
 * Property sweeps over core configurations: for any reasonable
 * CoreParams, the machine must make progress, commit exactly the
 * stream, never leak on benign work, and respect resource-scaling
 * monotonicities (bigger ROB -> no slower; smaller ROB -> shorter
 * transient window).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "attacks/registry.hh"
#include "sim/core.hh"
#include "sim/memory.hh"
#include "util/rng.hh"
#include "workload/registry.hh"

namespace evax
{
namespace
{

struct ConfigCase
{
    const char *label;
    unsigned rob;
    unsigned width;
    unsigned lq;
    unsigned iq;
};

class CoreConfigs : public ::testing::TestWithParam<ConfigCase>
{
  protected:
    CoreParams
    params() const
    {
        CoreParams p;
        const ConfigCase &c = GetParam();
        p.robEntries = c.rob;
        p.fetchWidth = p.dispatchWidth = p.issueWidth =
            p.commitWidth = c.width;
        p.lqEntries = p.sqEntries = c.lq;
        p.iqEntries = c.iq;
        return p;
    }
};

TEST_P(CoreConfigs, BenignKernelCommitsEverything)
{
    CoreParams p = params();
    CounterRegistry reg;
    O3Core core(p, reg);
    auto wl = WorkloadRegistry::create("compress", 3, 8000);
    SimResult res = core.run(*wl);
    EXPECT_GE(res.committedInsts, 8000u);
    EXPECT_TRUE(res.streamExhausted);
    EXPECT_EQ(res.leaks, 0u);
}

TEST_P(CoreConfigs, AttackRunsWithoutDeadlock)
{
    CoreParams p = params();
    CounterRegistry reg;
    O3Core core(p, reg);
    auto atk = AttackRegistry::create("meltdown", 3, 8000);
    SimResult res = core.run(*atk);
    EXPECT_GT(res.committedInsts, 4000u);
}

TEST_P(CoreConfigs, DefensesNeverLeakRegardlessOfGeometry)
{
    for (DefenseMode m : {DefenseMode::FenceFuturistic,
                          DefenseMode::InvisiSpecFuturistic}) {
        CoreParams p = params();
        CounterRegistry reg;
        O3Core core(p, reg);
        core.setDefenseMode(m);
        auto atk = AttackRegistry::create("spectre-pht", 3, 8000);
        SimResult res = core.run(*atk);
        EXPECT_EQ(res.leaks, 0u)
            << GetParam().label << " " << defenseModeName(m);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CoreConfigs,
    ::testing::Values(
        ConfigCase{"tiny", 32, 2, 8, 16},
        ConfigCase{"small", 64, 4, 16, 32},
        ConfigCase{"table2", 192, 8, 32, 64},
        ConfigCase{"wide", 256, 8, 48, 96},
        ConfigCase{"huge", 384, 8, 64, 128}),
    [](const ::testing::TestParamInfo<ConfigCase> &info) {
        return info.param.label;
    });

TEST(CoreScaling, BiggerRobDoesNotHurtIlp)
{
    auto ipc_with_rob = [](unsigned rob) {
        CoreParams p;
        p.robEntries = rob;
        CounterRegistry reg;
        O3Core core(p, reg);
        auto wl = WorkloadRegistry::create("linalg", 3, 15000);
        return core.run(*wl).ipc();
    };
    double small = ipc_with_rob(32);
    double large = ipc_with_rob(256);
    EXPECT_GE(large, small * 0.95);
}

TEST(CoreScaling, SmallRobShrinksTransientWindow)
{
    // Paper Sec. I: the transient window is bounded by the ROB; a
    // small ROB defeats evasion attempts that need a long window.
    auto leaks_with_rob = [](unsigned rob) {
        CoreParams p;
        p.robEntries = rob;
        CounterRegistry reg;
        O3Core core(p, reg);
        auto atk = AttackRegistry::create("spectre-pht", 3, 25000);
        return core.run(*atk).leaks;
    };
    uint64_t small = leaks_with_rob(24);
    uint64_t large = leaks_with_rob(192);
    EXPECT_LE(small, large);
}

TEST(CoreScaling, NarrowMachineIsSlower)
{
    auto ipc_with_width = [](unsigned w) {
        CoreParams p;
        p.fetchWidth = p.dispatchWidth = p.issueWidth =
            p.commitWidth = w;
        CounterRegistry reg;
        O3Core core(p, reg);
        auto wl = WorkloadRegistry::create("eventsim", 3, 15000);
        return core.run(*wl).ipc();
    };
    EXPECT_GT(ipc_with_width(8), ipc_with_width(1));
}

// ---------------------------------------------------------------
// Cache-hierarchy invariants under random benign stimulus. These
// guard the L1-hit fast path and MSHR bookkeeping reorder in
// Cache::access: no access sequence may overcommit MSHRs, and the
// hierarchy stays inclusive as long as the L2 never evicts.
// ---------------------------------------------------------------

TEST(CacheProperties, MshrCountNeverExceedsCapacity)
{
    CounterRegistry reg;
    Cache cache({"dcache", 4 * 1024, 2, 64, 2, 4}, reg);
    Rng rng(0xfeed);
    for (int i = 0; i < 20000; ++i) {
        Addr addr = rng.nextBounded(1 << 16);
        bool write = rng.nextBool(0.3);
        Cycle now = (Cycle)i; // monotonic clock, slow drain
        CacheAccessResult r = cache.access(addr, write, now, 40);
        ASSERT_LE(cache.mshrsInFlight(), cache.mshrCapacity());
        if (r.mshrFull) {
            // A structural stall must mean every register is busy.
            ASSERT_EQ(cache.mshrsInFlight(), cache.mshrCapacity());
        }
        if (r.hit)
            ASSERT_TRUE(cache.probe(addr));
    }
}

TEST(CacheProperties, MshrFullEventuallyDrains)
{
    CounterRegistry reg;
    Cache cache({"dcache", 4 * 1024, 2, 64, 2, 2}, reg);
    // Saturate the MSHRs with distinct-line misses at time 0.
    unsigned full = 0;
    for (int i = 0; i < 8; ++i) {
        if (cache.access((Addr)i * 4096, false, 0, 50).mshrFull)
            ++full;
    }
    EXPECT_GT(full, 0u);
    // Far in the future every miss has returned: a fresh miss must
    // get a register again.
    CacheAccessResult r = cache.access(1 << 20, false, 10000, 50);
    EXPECT_FALSE(r.mshrFull);
    EXPECT_FALSE(r.hit);
}

TEST(CacheProperties, InclusionHoldsWhileL2DoesNotEvict)
{
    CoreParams p;
    CounterRegistry reg;
    MemorySystem mem(p, reg);
    // Working set: 4x the L1 capacity (forces L1 evictions) but
    // well under the L2, so the L2 never replaces anything and the
    // no-back-invalidation hierarchy must stay strictly inclusive.
    const Addr span = (Addr)p.dcacheSize * 4;
    ASSERT_LT(span * 2, (Addr)p.l2Size);
    Rng rng(0xcafe);
    for (int i = 0; i < 5000; ++i) {
        Addr addr = rng.nextBounded(span);
        mem.load(addr, 8, (Cycle)i * 4, false);
    }
    for (Addr line : mem.dcache().residentLines()) {
        ASSERT_TRUE(mem.l2().probe(line))
            << "dcache line 0x" << std::hex << line
            << " missing from l2";
    }
}

TEST(CacheProperties, MissFillsBothLevelsInvisibleFillsNeither)
{
    CoreParams p;
    CounterRegistry reg;
    MemorySystem mem(p, reg);
    const Addr a = 0x1234500;
    LoadResult r = mem.load(a, 8, 10, false);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(mem.dcache().probe(a));
    EXPECT_TRUE(mem.l2().probe(a));

    // An InvisiSpec (invisible) load must not install new state.
    const Addr b = 0x9876500;
    mem.load(b, 8, 20, true);
    EXPECT_FALSE(mem.dcache().probe(b));

    // clflush invalidates the whole hierarchy.
    mem.clflush(a, 30);
    EXPECT_FALSE(mem.dcache().probe(a));
    EXPECT_FALSE(mem.l2().probe(a));
}

// ---------------------------------------------------------------
// Commit-order / squash-window invariants across the fast paths:
// the seq-index structures in O3Core must never change what
// commits, only how fast the scans find it.
// ---------------------------------------------------------------

TEST(CommitProperties, CommitCountInvariantAcrossDefenseModes)
{
    auto committed_with_mode = [](DefenseMode m) {
        CoreParams p;
        CounterRegistry reg;
        O3Core core(p, reg);
        core.setDefenseMode(m);
        auto wl = WorkloadRegistry::create("sort", 5, 6000);
        SimResult res = core.run(*wl);
        EXPECT_TRUE(res.streamExhausted);
        EXPECT_EQ(res.leaks, 0u);
        return res.committedInsts;
    };
    uint64_t baseline = committed_with_mode(DefenseMode::None);
    for (DefenseMode m : {DefenseMode::FenceSpectre,
                          DefenseMode::FenceFuturistic,
                          DefenseMode::InvisiSpecSpectre,
                          DefenseMode::InvisiSpecFuturistic}) {
        EXPECT_EQ(committed_with_mode(m), baseline)
            << defenseModeName(m)
            << ": defenses may change timing, never the committed "
               "architectural stream";
    }
}

TEST(CommitProperties, RunsAreDeterministicReplays)
{
    auto snapshot = [](const char *kind, const char *name,
                       DefenseMode m) {
        CoreParams p;
        CounterRegistry reg;
        O3Core core(p, reg);
        core.setDefenseMode(m);
        auto stream = std::string(kind) == "attack"
                          ? AttackRegistry::create(name, 9, 5000)
                          : WorkloadRegistry::create(name, 9, 5000);
        SimResult res = core.run(*stream);
        std::vector<double> snap = reg.snapshot();
        snap.push_back((double)res.cycles);
        snap.push_back((double)res.committedInsts);
        snap.push_back((double)res.squashes);
        snap.push_back((double)res.leaks);
        return snap;
    };
    EXPECT_EQ(snapshot("workload", "compress", DefenseMode::None),
              snapshot("workload", "compress", DefenseMode::None));
    EXPECT_EQ(snapshot("attack", "spectre-pht", DefenseMode::None),
              snapshot("attack", "spectre-pht", DefenseMode::None));
    EXPECT_EQ(
        snapshot("attack", "meltdown",
                 DefenseMode::InvisiSpecFuturistic),
        snapshot("attack", "meltdown",
                 DefenseMode::InvisiSpecFuturistic));
}

TEST(CommitProperties, SquashWindowRespectsRobBound)
{
    // The transient window is bounded by the ROB: every squash can
    // kill at most robEntries in-flight ops, so the total number of
    // squashed ops can't exceed squashes * robEntries.
    CoreParams p;
    p.robEntries = 48;
    CounterRegistry reg;
    O3Core core(p, reg);
    auto atk = AttackRegistry::create("spectre-pht", 7, 10000);
    SimResult res = core.run(*atk);
    EXPECT_GT(res.squashes, 0u);
    double squash_insts = reg.valueByName("commit.squashedInsts");
    EXPECT_LE(squash_insts,
              (double)res.squashes * (double)p.robEntries);
}

TEST(CommitProperties, BenignStreamCommitsExactlyOncePerOp)
{
    // Random benign stimulus across kernels: replayed (squashed)
    // ops commit exactly once — committed count equals the stream's
    // architectural length, independent of wrong-path noise.
    Rng rng(0x5eed);
    for (const auto &name : WorkloadRegistry::names()) {
        uint64_t len = 3000 + rng.nextBounded(3000);
        // Generators round up to whole kernel iterations, so count
        // the true architectural length by draining a twin stream.
        auto twin = WorkloadRegistry::create(name, 17, len);
        MicroOp op;
        uint64_t arch_len = 0;
        while (twin->next(op))
            ++arch_len;
        ASSERT_GE(arch_len, len) << name;

        CoreParams p;
        CounterRegistry reg;
        O3Core core(p, reg);
        auto wl = WorkloadRegistry::create(name, 17, len);
        SimResult res = core.run(*wl);
        EXPECT_TRUE(res.streamExhausted) << name;
        EXPECT_EQ(res.committedInsts, arch_len) << name;
        EXPECT_EQ(res.leaks, 0u) << name;
    }
}

TEST(CoreScaling, SamplerIntervalCountsWindows)
{
    for (uint64_t interval : {100ULL, 1000ULL, 5000ULL}) {
        CoreParams p;
        CounterRegistry reg;
        O3Core core(p, reg);
        Sampler sampler(reg, interval);
        core.attachSampler(&sampler);
        uint64_t windows = 0;
        core.setSampleCallback(
            [&](const FeatureSnapshot &) { ++windows; });
        auto wl = WorkloadRegistry::create("fft", 3, 20000);
        SimResult res = core.run(*wl);
        uint64_t expected = res.committedInsts / interval;
        EXPECT_NEAR((double)windows, (double)expected, 2.0)
            << "interval " << interval;
    }
}

} // anonymous namespace
} // namespace evax
