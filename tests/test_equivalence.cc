/**
 * @file
 * Execution-mode equivalence tier (ctest -L sched).
 *
 * The event-driven scheduler (sim/scheduler.hh) and the idle-skip
 * fast path in O3Core::run are only allowed to change *wall-clock*
 * time, never simulated behavior. This suite pins that contract:
 * every golden core digest from tests/golden_util.hh — the exact
 * constants test_golden.cc pins in tick-loop mode — must reproduce
 * bit for bit with RunMode::EventDriven, and the differential
 * oracle must stay green over a million-instruction run in both
 * modes with an identical report.
 *
 * A lost wakeup (a component arming an activation threshold without
 * posting a marker) shows up here as a digest mismatch or an oracle
 * divergence; the seeded EVAX_MUTATION_LOST_WAKEUP build proves the
 * tier actually fires (see tests/test_diff_oracle.cc).
 */

#include <gtest/gtest.h>

#include "core/collector.hh"
#include "sim/core.hh"
#include "verify/diff_runner.hh"
#include "verify/fast_forward.hh"

#include "golden_util.hh"

namespace evax
{
namespace
{

CoreParams
eventParams()
{
    CoreParams params;
    params.runMode = RunMode::EventDriven;
    return params;
}

// ---------------------------------------------------------------
// Event-driven mode vs the tick-loop golden pins.
// ---------------------------------------------------------------

TEST(EquivalenceEvent, BenignDigestsMatchTickPins)
{
    size_t count = 0;
    const CoreCase *cases = goldenCoreCases(count);
    for (size_t i = 0; i < 5; ++i) {
        const CoreCase &c = cases[i];
        expectDigest(
            coreRunDigest(c.stream, c.attack, c.mode, eventParams()),
            c.pinned, c.stream);
    }
}

TEST(EquivalenceEvent, AttackDigestsMatchTickPins)
{
    size_t count = 0;
    const CoreCase *cases = goldenCoreCases(count);
    for (size_t i = 5; i < 13; ++i) {
        const CoreCase &c = cases[i];
        expectDigest(
            coreRunDigest(c.stream, c.attack, c.mode, eventParams()),
            c.pinned, c.stream);
    }
}

TEST(EquivalenceEvent, DefenseDigestsMatchTickPins)
{
    size_t count = 0;
    const CoreCase *cases = goldenCoreCases(count);
    ASSERT_EQ(count, 22u);
    for (size_t i = 13; i < count; ++i) {
        const CoreCase &c = cases[i];
        std::string label = std::string(c.stream) + "/mode" +
                            std::to_string((int)c.mode);
        expectDigest(
            coreRunDigest(c.stream, c.attack, c.mode, eventParams()),
            c.pinned, label.c_str());
    }
}

/** The MultiCore driver at N=1 in event-driven mode: the global
 *  idle-skip loop must still land on every tick-loop pin. */
TEST(EquivalenceEvent, MultiCoreSingleCoreMatchesTickPins)
{
    size_t count = 0;
    const CoreCase *cases = goldenCoreCases(count);
    ASSERT_EQ(count, 22u);
    for (size_t i = 0; i < count; ++i) {
        const CoreCase &c = cases[i];
        std::string label = std::string("multicore-n1-event/") +
                            c.stream + "/mode" +
                            std::to_string((int)c.mode);
        expectDigest(multiCoreRunDigest(c.stream, c.attack, c.mode,
                                        eventParams()),
                     c.pinned, label.c_str());
    }
}

/** Digest a 2-core coherent run: both cores' registries, the shared
 *  uncore registry, and both SimResults. */
uint64_t
twoCoreDigest(const CoreParams &params)
{
    MultiCoreParams mp;
    mp.numCores = 2;
    mp.core = params;
    MultiCore machine(mp);
    auto a = AttackRegistry::create("prime-probe", 3, 6000);
    auto b = WorkloadRegistry::create("compress", 4, 6000);
    std::vector<InstStream *> streams{a.get(), b.get()};
    std::vector<SimResult> res = machine.run(streams);
    uint64_t h = kFnvSeed;
    for (unsigned i = 0; i < machine.numCores(); ++i) {
        std::vector<double> snap = machine.counters(i).snapshot();
        h = hashDoubles(h, snap.data(), snap.size());
        h = hashSimResult(h, res[i]);
    }
    std::vector<double> uncore = machine.uncoreCounters().snapshot();
    h = hashDoubles(h, uncore.data(), uncore.size());
    return h;
}

/** Event-driven mode on the 2-core coherent machine must reproduce
 *  the tick-loop run bit for bit — the multi-core extension of the
 *  execution-mode contract. */
TEST(EquivalenceEvent, TwoCoreCoherentDigestsMatchAcrossModes)
{
    EXPECT_EQ(twoCoreDigest(CoreParams()),
              twoCoreDigest(eventParams()));
}

/** The fig15 third-row corpus, collected on event-driven cores. */
TEST(EquivalenceEvent, Interval100CorpusDigest)
{
    CollectorConfig cfg;
    cfg.sampleInterval = 100;
    cfg.benignLength = 5000;
    cfg.attackLength = 4000;
    cfg.benignSeeds = 1;
    cfg.attackSeeds = 1;
    cfg.coreParams.runMode = RunMode::EventDriven;
    Collector collector(cfg);
    Dataset data;
    data.classNames = AttackRegistry::classNames();
    auto wl = WorkloadRegistry::create("compress", 11, 5000);
    collector.collectStream(*wl, BENIGN_CLASS, false, data);
    auto atk = AttackRegistry::create("spectre-stl", 13, 4000);
    collector.collectStream(*atk,
                            AttackRegistry::classId("spectre-stl"),
                            true, data);
    expectDigest(datasetDigest(data), 0xb2dcf17c5a982463ULL,
                 "interval100corpus/event");
}

/** The event scheduler must actually be load-bearing: an idle-heavy
 *  stream in event mode retires markers and skips cycles. */
TEST(EquivalenceEvent, SchedulerIsLoadBearing)
{
    CounterRegistry reg;
    CoreParams params = eventParams();
    O3Core core(params, reg);
    uint64_t skips = 0, skipped_cycles = 0;
    core.setSkipHook([&](Cycle from, Cycle to) {
        ++skips;
        skipped_cycles += to - from;
        ASSERT_GT(to, from);
    });
    auto stream = WorkloadRegistry::create("eventsim", 3, 6000);
    SimResult res = core.run(*stream);
    EXPECT_TRUE(res.streamExhausted);
    EXPECT_GT(core.scheduler().posted(), 0u);
    EXPECT_GT(skips, 0u) << "idle-skip never engaged on eventsim";
    EXPECT_GT(skipped_cycles, 0u);
}

/** Tick-loop mode must never engage the skip path or post markers. */
TEST(EquivalenceEvent, TickModePostsNothing)
{
    CounterRegistry reg;
    CoreParams params; // default: RunMode::TickLoop
    O3Core core(params, reg);
    uint64_t skips = 0;
    core.setSkipHook([&](Cycle, Cycle) { ++skips; });
    auto stream = WorkloadRegistry::create("eventsim", 3, 6000);
    core.run(*stream);
    EXPECT_EQ(core.scheduler().posted(), 0u);
    EXPECT_EQ(skips, 0u);
}

// ---------------------------------------------------------------
// Differential oracle across modes (the 1M-instruction run).
// ---------------------------------------------------------------

/** Digest the mode-independent surface of a DiffReport. */
uint64_t
reportDigest(const DiffReport &r)
{
    uint64_t h = kFnvSeed;
    h = hashU64(h, r.committedOoo);
    h = hashU64(h, r.committedRef);
    h = hashU64(h, r.trappedRef);
    h = hashU64(h, r.cyclesOoo);
    h = hashU64(h, r.cyclesRef);
    h = hashU64(h, r.checkpoints);
    h = hashU64(h, r.leaks);
    h = hashU64(h, r.streamExhausted ? 1 : 0);
    h = hashU64(h, r.mismatches.size());
    return h;
}

TEST(EquivalenceOracle, MillionInstructionRunBothModes)
{
    StreamSpec spec;
    spec.kind = StreamSpec::Kind::Benign;
    spec.name = "hashjoin";
    spec.seed = 12345;
    spec.length = 1000000;

    CoreParams tick;
    DiffReport tick_report =
        runDiffSpec(tick, DefenseMode::None, spec);
    EXPECT_TRUE(tick_report.ok()) << tick_report.summary();

    DiffReport event_report =
        runDiffSpec(eventParams(), DefenseMode::None, spec);
    EXPECT_TRUE(event_report.ok()) << event_report.summary();

    EXPECT_EQ(reportDigest(tick_report), reportDigest(event_report))
        << "tick: " << tick_report.summary()
        << "\nevent: " << event_report.summary();
}

/** Attack stream + defense mode through the oracle in event mode —
 *  exercises squash/expose/trap wake sources under diffing. */
TEST(EquivalenceOracle, AttackDefenseCaseBothModes)
{
    StreamSpec spec;
    spec.kind = StreamSpec::Kind::Attack;
    spec.name = "spectre-pht";
    spec.seed = 9;
    spec.length = 30000;

    CoreParams tick;
    DiffReport tick_report =
        runDiffSpec(tick, DefenseMode::InvisiSpecSpectre, spec);
    EXPECT_TRUE(tick_report.ok()) << tick_report.summary();

    DiffReport event_report = runDiffSpec(
        eventParams(), DefenseMode::InvisiSpecSpectre, spec);
    EXPECT_TRUE(event_report.ok()) << event_report.summary();

    EXPECT_EQ(reportDigest(tick_report), reportDigest(event_report));
}

// ---------------------------------------------------------------
// Fast-forward mode: functional surface vs the full-run reference.
// ---------------------------------------------------------------

std::function<std::unique_ptr<InstStream>()>
streamFactory(const StreamSpec &spec)
{
    return [spec] { return makeStream(spec); };
}

/**
 * The fast-forward contract: for any skip amount, the commit digest
 * chain over (functional prefix + detailed suffix) and the final
 * architectural digest equal the full-run reference, and window
 * boundaries stay aligned. Timing is explicitly out of contract.
 */
void
expectFfMatchesReference(const StreamSpec &spec, DefenseMode defense,
                         uint64_t skip, uint64_t interval)
{
    CoreParams params;
    auto factory = streamFactory(spec);
    FfReference ref = refFullRun(params, factory);

    FfOptions opts;
    opts.skipInsts = skip;
    opts.sampleInterval = interval;
    FastForwardRunner runner(params, defense, opts);
    FfResult ff = runner.run(factory);

    SCOPED_TRACE(spec.name + "/skip" + std::to_string(skip));
    EXPECT_EQ(ff.chainDigest, ref.chainDigest)
        << "commit digest chain diverged";
    EXPECT_EQ(ff.archDigest, ref.archDigest)
        << "final architectural state diverged";
    EXPECT_EQ(ff.totalCommitted, ref.committed);
    // Window alignment: the checkpoint lands on a window boundary.
    EXPECT_EQ(ff.checkpoint.skippedCommits % interval, 0u);
    EXPECT_EQ(ff.checkpoint.windowsSkipped,
              ff.checkpoint.skippedCommits / interval);
    EXPECT_EQ(ff.checkpoint.windowsSkipped + ff.windowsDetailed,
              ref.committed / interval);
}

TEST(EquivalenceFastForward, BenignStreamHalfSkip)
{
    StreamSpec spec;
    spec.name = "compress";
    spec.seed = 3;
    spec.length = 60000;
    expectFfMatchesReference(spec, DefenseMode::None, 30000, 1000);
}

TEST(EquivalenceFastForward, TrappingAttackStream)
{
    StreamSpec spec;
    spec.kind = StreamSpec::Kind::Attack;
    spec.name = "meltdown";
    spec.seed = 3;
    spec.length = 20000;
    // Meltdown streams trap: the twin-stream advance must account
    // for consumed-but-never-committed faulting ops.
    expectFfMatchesReference(spec, DefenseMode::None, 8000, 1000);
}

TEST(EquivalenceFastForward, ZeroSkipDegeneratesToFullDetailedRun)
{
    StreamSpec spec;
    spec.name = "fft";
    spec.seed = 7;
    spec.length = 20000;
    expectFfMatchesReference(spec, DefenseMode::None, 0, 1000);
}

TEST(EquivalenceFastForward, SkipIsQuantizedToWindowBoundary)
{
    StreamSpec spec;
    spec.name = "sort";
    spec.seed = 5;
    spec.length = 20000;
    // 7777 is not a window multiple; the runner must quantize to
    // 7000 so windows align.
    expectFfMatchesReference(spec, DefenseMode::None, 7777, 1000);

    CoreParams params;
    FfOptions opts;
    opts.skipInsts = 7777;
    opts.sampleInterval = 1000;
    FastForwardRunner runner(params, DefenseMode::None, opts);
    FfResult ff = runner.run(streamFactory(spec));
    EXPECT_EQ(ff.checkpoint.skippedCommits, 7000u);
}

TEST(EquivalenceFastForward, ComposesWithEventDrivenMode)
{
    StreamSpec spec;
    spec.name = "eventsim";
    spec.seed = 9;
    spec.length = 30000;
    auto factory = streamFactory(spec);
    FfReference ref = refFullRun(CoreParams(), factory);

    FfOptions opts;
    opts.skipInsts = 10000;
    opts.sampleInterval = 1000;
    FastForwardRunner runner(eventParams(), DefenseMode::None, opts);
    FfResult ff = runner.run(factory);
    EXPECT_EQ(ff.chainDigest, ref.chainDigest);
    EXPECT_EQ(ff.archDigest, ref.archDigest);
    EXPECT_EQ(ff.totalCommitted, ref.committed);
}

TEST(EquivalenceFastForward, MillionInstructionRun)
{
    StreamSpec spec;
    spec.name = "hashjoin";
    spec.seed = 12345;
    spec.length = 1000000;
    expectFfMatchesReference(spec, DefenseMode::None, 600000, 1000);
}

} // namespace
} // namespace evax
