/**
 * @file
 * Property tests for the event scheduler (sim/scheduler.hh) and the
 * idle-skip fast path it drives (O3Core::idleSkip).
 *
 * Queue-level properties: no lost wakeups (every posted marker is
 * either pending or retired), monotonic pop order, deterministic
 * same-cycle ordering by insertion sequence. Core-level properties,
 * asserted from the skip hook over real attack/benign runs: skip
 * windows advance monotonically and never jump past a pending MSHR
 * fill or a due DRAM refresh epoch. A serial-vs-4-thread corpus
 * digest pins that event-mode runs stay byte-identical under the
 * global thread pool (tsan label).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "attacks/registry.hh"
#include "core/collector.hh"
#include "sim/core.hh"
#include "sim/scheduler.hh"
#include "util/parallel.hh"
#include "workload/registry.hh"

#include "golden_util.hh"

namespace evax
{
namespace
{

/** Tiny deterministic generator (keeps the tests self-contained). */
struct TestRng
{
    uint64_t state;
    explicit TestRng(uint64_t seed) : state(seed ^ 0x9e3779b97f4a7c15ULL) {}
    uint64_t
    next()
    {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    }
};

// ---------------------------------------------------------------
// Queue-level properties.
// ---------------------------------------------------------------

TEST(SchedulerQueue, EmptyQueueReportsNoEvent)
{
    EventScheduler sched;
    EXPECT_TRUE(sched.empty());
    EXPECT_EQ(sched.nextEventCycle(), EventScheduler::kNoEvent);
    EventScheduler::Event e;
    EXPECT_FALSE(sched.pop(e));
}

TEST(SchedulerQueue, SameCycleOrderingIsInsertionOrder)
{
    EventScheduler sched;
    const WakeSource sources[] = {
        WakeSource::WriteDrain, WakeSource::IssueReady,
        WakeSource::DramRefresh, WakeSource::Expose,
        WakeSource::MshrFill, WakeSource::Trap,
        WakeSource::FetchStall,
    };
    for (WakeSource s : sources)
        sched.post(42, s);
    EventScheduler::Event e;
    for (size_t i = 0; i < 7; ++i) {
        ASSERT_TRUE(sched.pop(e));
        EXPECT_EQ(e.cycle, 42u);
        EXPECT_EQ(e.seq, i) << "same-cycle pops must follow "
                               "insertion order";
        EXPECT_EQ(e.source, sources[i]);
    }
    EXPECT_TRUE(sched.empty());
}

TEST(SchedulerQueue, PopOrderIsMonotonicUnderRandomPosts)
{
    EventScheduler sched;
    TestRng rng(1234);
    for (int i = 0; i < 5000; ++i)
        sched.post(rng.next() % 100000, WakeSource::IssueReady);
    EventScheduler::Event e;
    Cycle last = 0;
    size_t popped = 0;
    while (sched.pop(e)) {
        EXPECT_GE(e.cycle, last) << "pop order went backwards";
        last = e.cycle;
        ++popped;
    }
    EXPECT_EQ(popped, 5000u);
}

/** No lost wakeups: posted == retired + pending at every step of a
 *  random post/pop/retire workload, and drained markers cover every
 *  distinct posted cycle. */
TEST(SchedulerQueue, NoLostWakeupsUnderRandomWorkload)
{
    EventScheduler sched;
    TestRng rng(987);
    for (int step = 0; step < 20000; ++step) {
        uint64_t roll = rng.next() % 100;
        if (roll < 60) {
            sched.post(rng.next() % 5000, WakeSource::MshrFill);
        } else if (roll < 90) {
            EventScheduler::Event e;
            sched.pop(e);
        } else {
            sched.retireBefore(rng.next() % 5000);
        }
        ASSERT_EQ(sched.posted(), sched.retired() + sched.pending())
            << "a marker vanished without being retired";
    }
}

TEST(SchedulerQueue, RetireBeforeKeepsMarkersAtNow)
{
    EventScheduler sched;
    sched.post(10, WakeSource::WriteDrain);
    sched.post(11, WakeSource::WriteDrain);
    sched.retireBefore(10);
    EXPECT_EQ(sched.pending(), 2u)
        << "a marker exactly at 'now' must survive";
    sched.retireBefore(11);
    EXPECT_EQ(sched.pending(), 1u);
    EXPECT_EQ(sched.nextEventCycle(), 11u);
}

TEST(SchedulerQueue, PerSourceAccountingSumsToTotal)
{
    EventScheduler sched;
    TestRng rng(55);
    for (int i = 0; i < 1000; ++i) {
        sched.post(rng.next() % 777,
                   (WakeSource)(rng.next() % NUM_WAKE_SOURCES));
    }
    uint64_t by_source = 0;
    for (unsigned s = 0; s < NUM_WAKE_SOURCES; ++s)
        by_source += sched.postedBySource((WakeSource)s);
    EXPECT_EQ(by_source, sched.posted());
    EXPECT_EQ(sched.posted(), 1000u);
}

TEST(SchedulerQueue, ClearKeepsLifetimeStats)
{
    EventScheduler sched;
    sched.post(1, WakeSource::Trap);
    sched.post(2, WakeSource::Trap);
    EventScheduler::Event e;
    sched.pop(e);
    sched.clear();
    EXPECT_TRUE(sched.empty());
    EXPECT_EQ(sched.posted(), 2u);
    EXPECT_EQ(sched.retired(), 1u);
    // seq stays monotonic across clear(): a fresh post still orders
    // after everything that came before.
    sched.post(1, WakeSource::Trap);
    ASSERT_TRUE(sched.pop(e));
    EXPECT_GE(e.seq, 2u);
}

TEST(SchedulerQueue, WakeSourceNamesAreStable)
{
    EXPECT_STREQ(wakeSourceName(WakeSource::IssueReady),
                 "issueReady");
    EXPECT_STREQ(wakeSourceName(WakeSource::MshrFill), "mshrFill");
    EXPECT_STREQ(wakeSourceName(WakeSource::DramRefresh),
                 "dramRefresh");
}

// ---------------------------------------------------------------
// Core-level idle-skip properties.
// ---------------------------------------------------------------

/**
 * Run @p stream in event mode and assert, at every skip, that the
 * jump (from, to] is monotonic and never crosses a pending MSHR
 * fill in any cache level or a due DRAM refresh epoch.
 */
void
expectSkipsRespectHardware(const char *stream_name, bool is_attack)
{
    CounterRegistry reg;
    CoreParams params;
    params.runMode = RunMode::EventDriven;
    O3Core core(params, reg);
    MemorySystem &mem = core.memory();

    uint64_t skips = 0;
    Cycle prev_to = 0;
    core.setSkipHook([&](Cycle from, Cycle to) {
        ++skips;
        ASSERT_GT(to, from) << "empty skip window";
        ASSERT_GE(from, prev_to) << "skip windows out of order";
        prev_to = to;
        const Cache *caches[] = {&mem.icache(), &mem.dcache(),
                                 &mem.l2()};
        for (const Cache *c : caches) {
            Cycle ready = c->earliestMshrReadyAfter(from);
            EXPECT_GE(ready, to)
                << "idle-skip jumped past a pending MSHR fill at "
                << ready << " (window " << from << " -> " << to
                << ")";
        }
        Cycle epoch = mem.dram().nextRefreshEpoch();
        EXPECT_TRUE(epoch <= from || epoch >= to)
            << "idle-skip jumped past the DRAM refresh epoch at "
            << epoch << " (window " << from << " -> " << to << ")";
    });

    auto stream = is_attack
                      ? AttackRegistry::create(stream_name, 3, 20000)
                      : WorkloadRegistry::create(stream_name, 3,
                                                 20000);
    SimResult res = core.run(*stream);
    EXPECT_TRUE(res.streamExhausted);
    // The property is vacuous if the skip path never engaged.
    EXPECT_GT(skips, 0u) << stream_name
                         << ": idle-skip never engaged";
}

TEST(SchedulerSkip, NeverSkipsPendingMshrOrRefreshBenign)
{
    expectSkipsRespectHardware("eventsim", false);
    expectSkipsRespectHardware("pointerchase", false);
}

TEST(SchedulerSkip, NeverSkipsPendingMshrOrRefreshAttacks)
{
    expectSkipsRespectHardware("flush-reload", true);
    expectSkipsRespectHardware("rowhammer", true);
    expectSkipsRespectHardware("spectre-stl", true);
}

/** Defense modes change the wake-source mix (expose events, fence
 *  stalls); the skip invariants must hold there too. */
TEST(SchedulerSkip, InvariantsHoldUnderInvisiSpec)
{
    CounterRegistry reg;
    CoreParams params;
    params.runMode = RunMode::EventDriven;
    O3Core core(params, reg);
    core.setDefenseMode(DefenseMode::InvisiSpecFuturistic);
    Cycle prev_to = 0;
    core.setSkipHook([&](Cycle from, Cycle to) {
        ASSERT_GT(to, from);
        ASSERT_GE(from, prev_to);
        prev_to = to;
    });
    auto stream = AttackRegistry::create("spectre-pht", 3, 20000);
    SimResult res = core.run(*stream);
    EXPECT_TRUE(res.streamExhausted);
    EXPECT_GT(core.scheduler().posted(), 0u);
}

// ---------------------------------------------------------------
// Thread-count byte-identity (tsan label).
// ---------------------------------------------------------------

uint64_t
eventCorpusDigest()
{
    CollectorConfig cfg;
    cfg.sampleInterval = 500;
    cfg.benignLength = 4000;
    cfg.attackLength = 3000;
    cfg.benignSeeds = 1;
    cfg.attackSeeds = 1;
    cfg.coreParams.runMode = RunMode::EventDriven;
    Collector collector(cfg);
    Dataset data = collector.collectCorpus();
    return datasetDigest(data);
}

TEST(SchedulerParallel, SerialVsFourThreadCorpusByteIdentical)
{
    unsigned before = globalThreadCount();
    setGlobalThreadCount(1);
    uint64_t serial = eventCorpusDigest();
    setGlobalThreadCount(4);
    uint64_t threaded = eventCorpusDigest();
    setGlobalThreadCount(before);
    EXPECT_EQ(serial, threaded)
        << "event-driven corpus digest depends on thread count";
}

} // namespace
} // namespace evax
