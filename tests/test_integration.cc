/**
 * @file
 * Integration tests across the whole stack: corpus collection,
 * normalization profiles, vaccination, K-fold, gated end-to-end
 * runs. These exercise the same paths the benches use, at a small
 * scale.
 */

#include <gtest/gtest.h>

#include "core/endtoend.hh"
#include "core/experiment.hh"
#include "core/kfold.hh"
#include "core/vaccination.hh"
#include "ml/metrics.hh"

namespace evax
{
namespace
{

CollectorConfig
tinyCollector()
{
    CollectorConfig c;
    c.sampleInterval = 1000;
    c.benignLength = 10000;
    c.attackLength = 8000;
    c.benignSeeds = 1;
    c.attackSeeds = 1;
    return c;
}

TEST(Collector, CorpusHasAllClasses)
{
    Collector collector(tinyCollector());
    Dataset corpus = collector.collectCorpus();
    EXPECT_EQ(corpus.classNames.size(),
              1u + AttackRegistry::names().size());
    EXPECT_GT(corpus.countClass(BENIGN_CLASS), 0u);
    for (const auto &name : AttackRegistry::names()) {
        EXPECT_GT(corpus.countClass(AttackRegistry::classId(name)),
                  0u)
            << name;
    }
}

TEST(Collector, NormalizationIsUnitRangeAndReusable)
{
    Collector collector(tinyCollector());
    Dataset corpus = collector.collectCorpus();
    NormalizationProfile profile = Collector::normalize(corpus);
    for (const auto &s : corpus.samples) {
        for (double v : s.x) {
            ASSERT_GE(v, 0.0);
            ASSERT_LE(v, 1.0);
        }
    }
    // Applying the frozen profile to new raw data stays in range.
    Dataset fresh;
    auto wl = WorkloadRegistry::create("sort", 99, 8000);
    collector.collectStream(*wl, BENIGN_CLASS, false, fresh);
    Collector::applyProfile(fresh, profile);
    for (const auto &s : fresh.samples)
        for (double v : s.x)
            ASSERT_LE(v, 1.0);
}

TEST(Collector, AttackWindowsAreLabeled)
{
    Collector collector(tinyCollector());
    Dataset data;
    data.classNames = AttackRegistry::classNames();
    auto atk = AttackRegistry::create("meltdown", 3, 8000);
    SimResult res =
        collector.collectStream(*atk, 6, true, data);
    EXPECT_GT(res.committedInsts, 4000u);
    EXPECT_GT(data.size(), 0u);
    for (const auto &s : data.samples) {
        EXPECT_TRUE(s.malicious);
        EXPECT_EQ(s.attackClass, 6);
    }
}

TEST(Pipeline, DetectorsSeparateCorpus)
{
    ExperimentScale scale = ExperimentScale::quick();
    ExperimentSetup setup = buildExperiment(scale, 42);

    std::vector<double> sp, se;
    std::vector<bool> labels;
    for (const auto &s : setup.corpus.samples) {
        sp.push_back(setup.perspectron->score(s.x));
        se.push_back(setup.evax->score(s.x));
        labels.push_back(s.malicious);
    }
    EXPECT_GT(rocAuc(sp, labels), 0.9);
    EXPECT_GT(rocAuc(se, labels), 0.95);
}

TEST(Pipeline, VaccinationGrowsTrainingSetWithValidLabels)
{
    Collector collector(tinyCollector());
    Dataset corpus = collector.collectCorpus();
    Collector::normalize(corpus);
    VaccinationConfig vc = ExperimentScale::quick().vaccination;
    vc.epochs = 2;
    vc.itersPerEpoch = 150;
    Vaccinator v(vc);
    VaccinationResult vr = v.run(corpus);
    EXPECT_GT(vr.augmented.size(), corpus.size());
    EXPECT_EQ(vr.styleLossHistory.size(), 2u);
    EXPECT_EQ(vr.minedFeatures.size(), vc.minedFeatures);
    for (const auto &s : vr.augmented.samples) {
        EXPECT_EQ(s.malicious, s.attackClass != BENIGN_CLASS);
        for (double x : s.x) {
            ASSERT_GE(x, 0.0);
            ASSERT_LE(x, 1.0);
        }
    }
}

TEST(Pipeline, KfoldProducesOneFoldPerAttack)
{
    Collector collector(tinyCollector());
    Dataset corpus = collector.collectCorpus();
    Collector::normalize(corpus);
    auto folds = leaveOneAttackOut(
        corpus,
        [] { return std::make_unique<PerSpectron>(3); },
        [](Detector &d, const Dataset &train, Rng &rng) {
            d.train(train, 6, rng);
            d.tune(train, 0.01);
        },
        0.3, 7);
    EXPECT_EQ(folds.size(), AttackRegistry::names().size());
    for (const auto &f : folds) {
        EXPECT_FALSE(f.attackName.empty());
        EXPECT_GE(f.error, 0.0);
        EXPECT_LE(f.error, 1.0);
    }
}

TEST(EndToEnd, GatedAttackRunArmsSecureMode)
{
    ExperimentScale scale = ExperimentScale::quick();
    ExperimentSetup setup = buildExperiment(scale, 13);

    GatedRunConfig cfg;
    cfg.profile = setup.profile;
    cfg.adaptive.secureMode = DefenseMode::InvisiSpecFuturistic;
    cfg.adaptive.secureWindowInsts = 50000;

    auto atk = AttackRegistry::create("spectre-pht", 9, 25000);
    GatedRunResult g = runGated(*atk, *setup.evax, cfg);
    EXPECT_GT(g.flags, 0u);
    EXPECT_GT(g.activations, 0u);
    EXPECT_GT(g.secureInsts, 0u);
}

TEST(EndToEnd, GatedBenignRunStaysFast)
{
    ExperimentScale scale = ExperimentScale::quick();
    ExperimentSetup setup = buildExperiment(scale, 13);

    auto base_wl = WorkloadRegistry::create("eventsim", 9, 30000);
    double base = runPlain(*base_wl, DefenseMode::None).ipc();

    GatedRunConfig cfg;
    cfg.profile = setup.profile;
    cfg.adaptive.secureMode = DefenseMode::FenceFuturistic;
    cfg.adaptive.secureWindowInsts = 50000;
    auto wl = WorkloadRegistry::create("eventsim", 9, 30000);
    GatedRunResult g = runGated(*wl, *setup.evax, cfg);
    EXPECT_GT(g.sim.ipc(), base * 0.7)
        << "benign work must not pay the always-on cost";
}

TEST(EndToEnd, WindowDecisionsMatchSampling)
{
    ExperimentScale scale = ExperimentScale::quick();
    Collector collector(scale.collector);
    Dataset corpus = collector.collectCorpus();
    NormalizationProfile profile = Collector::normalize(corpus);
    PerSpectron det;
    Rng rng(3);
    det.train(corpus, 6, rng);

    GatedRunConfig cfg;
    cfg.profile = profile;
    cfg.sampleInterval = 1000;
    auto wl = WorkloadRegistry::create("fft", 3, 20000);
    auto decisions = windowDecisions(*wl, det, cfg);
    EXPECT_NEAR((double)decisions.size(), 20.0, 3.0);
}

} // anonymous namespace
} // namespace evax
