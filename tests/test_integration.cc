/**
 * @file
 * Integration tests across the whole stack: corpus collection,
 * normalization profiles, vaccination, K-fold, gated end-to-end
 * runs. These exercise the same paths the benches use, at a small
 * scale.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "core/endtoend.hh"
#include "core/experiment.hh"
#include "core/kfold.hh"
#include "core/vaccination.hh"
#include "ml/metrics.hh"
#include "util/csv.hh"
#include "util/parallel.hh"

namespace evax
{
namespace
{

CollectorConfig
tinyCollector()
{
    CollectorConfig c;
    c.sampleInterval = 1000;
    c.benignLength = 10000;
    c.attackLength = 8000;
    c.benignSeeds = 1;
    c.attackSeeds = 1;
    return c;
}

/** FNV-1a over a stream of doubles (bit-exact, not approximate). */
uint64_t
hashDoubles(uint64_t h, const double *v, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        uint64_t bits;
        std::memcpy(&bits, &v[i], sizeof(bits));
        for (int b = 0; b < 8; ++b) {
            h ^= (bits >> (8 * b)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }
    return h;
}

/** Bit-exact digest of every sample's features and labels. */
uint64_t
datasetDigest(const Dataset &data)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto &s : data.samples) {
        h = hashDoubles(h, s.x.data(), s.x.size());
        h ^= (uint64_t)s.attackClass * 0x9e3779b97f4a7c15ULL;
        h ^= s.malicious ? 0x5bULL : 0xa4ULL;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Byte-identical comparison of two datasets. */
void
expectIdenticalDatasets(const Dataset &a, const Dataset &b)
{
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.classNames, b.classNames);
    for (size_t i = 0; i < a.size(); ++i) {
        const Sample &sa = a.samples[i], &sb = b.samples[i];
        ASSERT_EQ(sa.attackClass, sb.attackClass) << "sample " << i;
        ASSERT_EQ(sa.malicious, sb.malicious) << "sample " << i;
        ASSERT_EQ(sa.x.size(), sb.x.size()) << "sample " << i;
        for (size_t f = 0; f < sa.x.size(); ++f)
            ASSERT_EQ(sa.x[f], sb.x[f])
                << "sample " << i << " feature " << f;
    }
}

TEST(Collector, CorpusHasAllClasses)
{
    Collector collector(tinyCollector());
    Dataset corpus = collector.collectCorpus();
    EXPECT_EQ(corpus.classNames.size(),
              1u + AttackRegistry::names().size());
    EXPECT_GT(corpus.countClass(BENIGN_CLASS), 0u);
    for (const auto &name : AttackRegistry::names()) {
        EXPECT_GT(corpus.countClass(AttackRegistry::classId(name)),
                  0u)
            << name;
    }
}

TEST(Collector, NormalizationIsUnitRangeAndReusable)
{
    Collector collector(tinyCollector());
    Dataset corpus = collector.collectCorpus();
    NormalizationProfile profile = Collector::normalize(corpus);
    for (const auto &s : corpus.samples) {
        for (double v : s.x) {
            ASSERT_GE(v, 0.0);
            ASSERT_LE(v, 1.0);
        }
    }
    // Applying the frozen profile to new raw data stays in range.
    Dataset fresh;
    auto wl = WorkloadRegistry::create("sort", 99, 8000);
    collector.collectStream(*wl, BENIGN_CLASS, false, fresh);
    Collector::applyProfile(fresh, profile);
    for (const auto &s : fresh.samples)
        for (double v : s.x)
            ASSERT_LE(v, 1.0);
}

TEST(Collector, AttackWindowsAreLabeled)
{
    Collector collector(tinyCollector());
    Dataset data;
    data.classNames = AttackRegistry::classNames();
    auto atk = AttackRegistry::create("meltdown", 3, 8000);
    SimResult res =
        collector.collectStream(*atk, 6, true, data);
    EXPECT_GT(res.committedInsts, 4000u);
    EXPECT_GT(data.size(), 0u);
    for (const auto &s : data.samples) {
        EXPECT_TRUE(s.malicious);
        EXPECT_EQ(s.attackClass, 6);
    }
}

TEST(Pipeline, DetectorsSeparateCorpus)
{
    ExperimentScale scale = ExperimentScale::quick();
    ExperimentSetup setup = buildExperiment(scale, 42);

    std::vector<double> sp, se;
    std::vector<bool> labels;
    for (const auto &s : setup.corpus.samples) {
        sp.push_back(setup.perspectron->score(s.x));
        se.push_back(setup.evax->score(s.x));
        labels.push_back(s.malicious);
    }
    EXPECT_GT(rocAuc(sp, labels), 0.9);
    EXPECT_GT(rocAuc(se, labels), 0.95);
}

TEST(Pipeline, VaccinationGrowsTrainingSetWithValidLabels)
{
    Collector collector(tinyCollector());
    Dataset corpus = collector.collectCorpus();
    Collector::normalize(corpus);
    VaccinationConfig vc = ExperimentScale::quick().vaccination;
    vc.epochs = 2;
    vc.itersPerEpoch = 150;
    Vaccinator v(vc);
    VaccinationResult vr = v.run(corpus);
    EXPECT_GT(vr.augmented.size(), corpus.size());
    EXPECT_EQ(vr.styleLossHistory.size(), 2u);
    EXPECT_EQ(vr.minedFeatures.size(), vc.minedFeatures);
    for (const auto &s : vr.augmented.samples) {
        EXPECT_EQ(s.malicious, s.attackClass != BENIGN_CLASS);
        for (double x : s.x) {
            ASSERT_GE(x, 0.0);
            ASSERT_LE(x, 1.0);
        }
    }
}

TEST(Pipeline, KfoldProducesOneFoldPerAttack)
{
    Collector collector(tinyCollector());
    Dataset corpus = collector.collectCorpus();
    Collector::normalize(corpus);
    auto folds = leaveOneAttackOut(
        corpus,
        [] { return std::make_unique<PerSpectron>(3); },
        [](Detector &d, const Dataset &train, Rng &rng) {
            d.train(train, 6, rng);
            d.tune(train, 0.01);
        },
        0.3, 7);
    EXPECT_EQ(folds.size(), AttackRegistry::names().size());
    for (const auto &f : folds) {
        EXPECT_FALSE(f.attackName.empty());
        EXPECT_GE(f.error, 0.0);
        EXPECT_LE(f.error, 1.0);
    }
}

TEST(EndToEnd, GatedAttackRunArmsSecureMode)
{
    ExperimentScale scale = ExperimentScale::quick();
    ExperimentSetup setup = buildExperiment(scale, 13);

    GatedRunConfig cfg;
    cfg.profile = setup.profile;
    cfg.adaptive.secureMode = DefenseMode::InvisiSpecFuturistic;
    cfg.adaptive.secureWindowInsts = 50000;

    auto atk = AttackRegistry::create("spectre-pht", 9, 25000);
    GatedRunResult g = runGated(*atk, *setup.evax, cfg);
    EXPECT_GT(g.flags, 0u);
    EXPECT_GT(g.activations, 0u);
    EXPECT_GT(g.secureInsts, 0u);
}

TEST(EndToEnd, GatedBenignRunStaysFast)
{
    ExperimentScale scale = ExperimentScale::quick();
    ExperimentSetup setup = buildExperiment(scale, 13);

    auto base_wl = WorkloadRegistry::create("eventsim", 9, 30000);
    double base = runPlain(*base_wl, DefenseMode::None).ipc();

    GatedRunConfig cfg;
    cfg.profile = setup.profile;
    cfg.adaptive.secureMode = DefenseMode::FenceFuturistic;
    cfg.adaptive.secureWindowInsts = 50000;
    auto wl = WorkloadRegistry::create("eventsim", 9, 30000);
    GatedRunResult g = runGated(*wl, *setup.evax, cfg);
    EXPECT_GT(g.sim.ipc(), base * 0.7)
        << "benign work must not pay the always-on cost";
}

TEST(EndToEnd, WindowDecisionsMatchSampling)
{
    ExperimentScale scale = ExperimentScale::quick();
    Collector collector(scale.collector);
    Dataset corpus = collector.collectCorpus();
    NormalizationProfile profile = Collector::normalize(corpus);
    PerSpectron det;
    Rng rng(3);
    det.train(corpus, 6, rng);

    GatedRunConfig cfg;
    cfg.profile = profile;
    cfg.sampleInterval = 1000;
    auto wl = WorkloadRegistry::create("fft", 3, 20000);
    auto decisions = windowDecisions(*wl, det, cfg);
    EXPECT_NEAR((double)decisions.size(), 20.0, 3.0);
}

// ---------------------------------------------------------------
// Serial-vs-parallel equivalence: the engine's headline guarantee
// is that EVAX_THREADS never changes any experiment output.
// ---------------------------------------------------------------

TEST(Parallelism, CorpusIdenticalAcrossThreadCounts)
{
    setGlobalThreadCount(1);
    Dataset serial = Collector(tinyCollector()).collectCorpus();
    setGlobalThreadCount(4);
    Dataset parallel = Collector(tinyCollector()).collectCorpus();
    setGlobalThreadCount(1);
    expectIdenticalDatasets(serial, parallel);
}

TEST(Parallelism, FuzzerSamplesIdenticalAcrossThreadCounts)
{
    auto collect = [] {
        Collector collector(tinyCollector());
        AttackFuzzer fuzzer(FuzzTool::Osiris, 41);
        return collector.collectFuzzerSamples(fuzzer, 6, 6000);
    };
    setGlobalThreadCount(1);
    Dataset serial = collect();
    setGlobalThreadCount(4);
    Dataset parallel = collect();
    setGlobalThreadCount(1);
    expectIdenticalDatasets(serial, parallel);
}

TEST(Parallelism, FuzzAugmentIdenticalAcrossThreadCounts)
{
    setGlobalThreadCount(1);
    Collector collector(tinyCollector());
    Dataset corpus = collector.collectCorpus();
    NormalizationProfile profile = Collector::normalize(corpus);

    auto augment = [&] {
        return fuzzAugment(corpus, profile, tinyCollector(), 2, 17);
    };
    Dataset serial = augment();
    setGlobalThreadCount(4);
    Dataset parallel = augment();
    setGlobalThreadCount(1);
    expectIdenticalDatasets(serial, parallel);
}

TEST(Parallelism, KfoldIdenticalAcrossThreadCounts)
{
    setGlobalThreadCount(1);
    Collector collector(tinyCollector());
    Dataset corpus = collector.collectCorpus();
    Collector::normalize(corpus);

    auto sweep = [&] {
        return leaveOneAttackOut(
            corpus,
            [] { return std::make_unique<PerSpectron>(3); },
            [](Detector &d, const Dataset &train, Rng &rng) {
                d.train(train, 4, rng);
                d.tune(train, 0.01);
            },
            0.3, 7);
    };
    auto serial = sweep();
    setGlobalThreadCount(4);
    auto parallel = sweep();
    setGlobalThreadCount(1);

    // Fold metrics — and the CSV a bench would emit from them —
    // must match byte-for-byte.
    ASSERT_EQ(serial.size(), parallel.size());
    auto to_csv = [](const std::vector<FoldResult> &folds) {
        Table t({"held_out_attack", "tpr", "fpr", "error", "auc"});
        for (const auto &f : folds)
            t.addRow({f.attackName, Table::fmt(f.tpr, 6),
                      Table::fmt(f.fpr, 6), Table::fmt(f.error, 6),
                      Table::fmt(f.auc, 6)});
        std::ostringstream os;
        t.writeCsv(os);
        return os.str();
    };
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].heldOutClass, parallel[i].heldOutClass);
        EXPECT_EQ(serial[i].tpr, parallel[i].tpr) << "fold " << i;
        EXPECT_EQ(serial[i].fpr, parallel[i].fpr) << "fold " << i;
        EXPECT_EQ(serial[i].error, parallel[i].error) << "fold " << i;
        EXPECT_EQ(serial[i].auc, parallel[i].auc) << "fold " << i;
    }
    EXPECT_EQ(to_csv(serial), to_csv(parallel));
}

// ---------------------------------------------------------------
// Golden digests: pin one bit-exact result per RNG-derivation path
// (corpus, fuzzer, k-fold) so a change that silently reseeds or
// reorders a random stream fails loudly instead of shifting every
// figure. If a deliberate seeding change lands, re-pin these by
// running the tests and copying the printed actual values.
// ---------------------------------------------------------------

TEST(GoldenSeeds, CorpusDigestIsPinned)
{
    setGlobalThreadCount(1);
    Dataset corpus = Collector(tinyCollector()).collectCorpus();
    ASSERT_GT(corpus.size(), 0u);
    EXPECT_EQ(datasetDigest(corpus), 0xe5d65edb66d776ffULL);
}

TEST(GoldenSeeds, FuzzerDigestIsPinned)
{
    setGlobalThreadCount(1);
    Collector collector(tinyCollector());
    AttackFuzzer fuzzer(FuzzTool::Transynther, 23);
    Dataset d = collector.collectFuzzerSamples(fuzzer, 4, 6000);
    ASSERT_GT(d.size(), 0u);
    EXPECT_EQ(datasetDigest(d), 0xd76158a4d06b7487ULL);
}

TEST(GoldenSeeds, KfoldMetricsDigestIsPinned)
{
    setGlobalThreadCount(1);
    Collector collector(tinyCollector());
    Dataset corpus = collector.collectCorpus();
    Collector::normalize(corpus);
    auto folds = leaveOneAttackOut(
        corpus,
        [] { return std::make_unique<PerSpectron>(3); },
        [](Detector &d, const Dataset &train, Rng &rng) {
            d.train(train, 4, rng);
            d.tune(train, 0.01);
        },
        0.3, 7);
    ASSERT_GT(folds.size(), 0u);
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto &f : folds) {
        double m[4] = {f.tpr, f.fpr, f.error, f.auc};
        h = hashDoubles(h, m, 4);
    }
    EXPECT_EQ(h, 0x523a003b8073dbb2ULL);
}

} // anonymous namespace
} // namespace evax
