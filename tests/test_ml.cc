/**
 * @file
 * ML library tests: matrix ops, MLP learning, perceptron,
 * metrics, Gram/style loss, dataset folds, AM-GAN behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/vaccination.hh"
#include "ml/dataset.hh"
#include "ml/gan.hh"
#include "ml/gram.hh"
#include "ml/matrix.hh"
#include "ml/metrics.hh"
#include "ml/mlp.hh"
#include "ml/perceptron.hh"
#include "util/parallel.hh"
#include "util/stats.hh"

namespace evax
{
namespace
{

TEST(Matrix, MultiplyTransposed)
{
    Matrix a(2, 3);
    int v = 1;
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 3; ++j)
            a.at(i, j) = v++;
    Matrix at = a.transposed();
    Matrix g = a.multiply(at); // 2x2 gram
    EXPECT_EQ(g.rows(), 2u);
    EXPECT_EQ(g.cols(), 2u);
    EXPECT_DOUBLE_EQ(g.at(0, 0), 1 + 4 + 9);
    EXPECT_DOUBLE_EQ(g.at(0, 1), 4 + 10 + 18);
    EXPECT_DOUBLE_EQ(g.at(1, 0), g.at(0, 1));
}

TEST(Matrix, SseAndAddScaled)
{
    Matrix a(1, 2), b(1, 2);
    a.at(0, 0) = 1;
    a.at(0, 1) = 2;
    b.at(0, 0) = 3;
    b.at(0, 1) = 0;
    EXPECT_DOUBLE_EQ(a.sseWith(b), 4 + 4);
    a.addScaled(b, 2.0);
    EXPECT_DOUBLE_EQ(a.at(0, 0), 7);
}

TEST(Mlp, LearnsXor)
{
    Mlp net({2, 8, 1}, Activation::Tanh, Activation::Sigmoid, 5);
    std::vector<std::pair<std::vector<double>, double>> data = {
        {{0, 0}, 0}, {{0, 1}, 1}, {{1, 0}, 1}, {{1, 1}, 0}};
    for (int epoch = 0; epoch < 3000; ++epoch)
        for (auto &[x, t] : data)
            net.trainBce(x, t, 0.02);
    for (auto &[x, t] : data) {
        double y = net.forward(x)[0];
        EXPECT_NEAR(y, t, 0.25) << x[0] << "," << x[1];
    }
}

TEST(Mlp, InputGradientDoesNotChangeWeights)
{
    Mlp net({3, 4, 1}, Activation::Relu, Activation::Sigmoid, 9);
    std::vector<double> before = net.layer(0).w;
    net.forward({1.0, -1.0, 0.5});
    auto grad = net.inputGradient({1.0});
    EXPECT_EQ(grad.size(), 3u);
    EXPECT_EQ(net.layer(0).w, before);
}

TEST(Mlp, InputGradientMatchesFiniteDifference)
{
    Mlp net({2, 5, 1}, Activation::Tanh, Activation::Sigmoid, 13);
    std::vector<double> x{0.3, -0.7};
    double y0 = net.forward(x)[0];
    auto grad = net.inputGradient({1.0});
    double eps = 1e-6;
    for (size_t i = 0; i < x.size(); ++i) {
        auto xp = x;
        xp[i] += eps;
        double y1 = net.forward(xp)[0];
        EXPECT_NEAR(grad[i], (y1 - y0) / eps, 1e-4);
    }
}

TEST(Perceptron, LearnsLinearlySeparable)
{
    Perceptron p(2, 3);
    Rng rng(17);
    Dataset data;
    for (int i = 0; i < 400; ++i) {
        Sample s;
        double x = rng.nextDouble(), y = rng.nextDouble();
        s.x = {x, y};
        s.malicious = x + y > 1.0;
        data.add(s);
    }
    p.fit(data, 60, 0.2, rng);
    ConfusionCounts cm;
    for (const auto &s : data.samples)
        cm.add(p.score(s.x) >= 0, s.malicious);
    EXPECT_GT(cm.accuracy(), 0.95);
}

TEST(Perceptron, QuantizeRange)
{
    Perceptron p(8, 3);
    for (auto &w : p.weights())
        w = 5.0;
    p.quantizeWeights();
    for (double w : p.weights()) {
        EXPECT_LE(w, 1.0);
        EXPECT_GE(w, -2.0);
        // quarter-step grid
        EXPECT_NEAR(std::round(w * 4) / 4, w, 1e-12);
    }
}

TEST(Perceptron, SensitivityTuningFlagsNearlyAllAttacks)
{
    Perceptron p(1, 3);
    p.weights()[0] = 1.0;
    Dataset data;
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        Sample s;
        s.malicious = i % 2 == 0;
        s.x = {s.malicious ? 0.5 + 0.5 * rng.nextDouble()
                           : 0.3 * rng.nextDouble()};
        data.add(s);
    }
    p.tuneThreshold(data, 0.01);
    ConfusionCounts cm;
    for (const auto &s : data.samples)
        cm.add(p.predict(s.x), s.malicious);
    EXPECT_GT(cm.tpr(), 0.97);
}

TEST(Metrics, PerfectAndRandomAuc)
{
    std::vector<double> s{0.9, 0.8, 0.2, 0.1};
    std::vector<bool> l{true, true, false, false};
    EXPECT_DOUBLE_EQ(rocAuc(s, l), 1.0);

    // Alternating labels: one of the two positives outranks both
    // negatives, the other outranks one -> AUC = 3/4.
    std::vector<bool> l2{true, false, true, false};
    EXPECT_NEAR(rocAuc(s, l2), 0.75, 0.01);
}

TEST(Metrics, AucIsRankInvariant)
{
    Rng rng(5);
    std::vector<double> s;
    std::vector<bool> l;
    for (int i = 0; i < 200; ++i) {
        s.push_back(rng.nextDouble());
        l.push_back(rng.nextBool(0.4));
    }
    double a = rocAuc(s, l);
    for (auto &x : s)
        x = x * 3.0 + 7.0; // monotone transform
    EXPECT_NEAR(rocAuc(s, l), a, 1e-12);
}

TEST(Metrics, BestAccuracyBeatsFixedThreshold)
{
    std::vector<double> s{0.1, 0.2, 0.8, 0.9};
    std::vector<bool> l{false, false, true, true};
    EXPECT_DOUBLE_EQ(bestAccuracy(s, l), 1.0);
}

TEST(Gram, IdenticalSeriesZeroLoss)
{
    std::vector<std::vector<double>> series = {
        {1, 0, 0.5}, {0.2, 0.8, 0.1}};
    Matrix a = gramMatrix(series);
    Matrix b = gramMatrix(series);
    EXPECT_DOUBLE_EQ(styleLoss(a, b), 0.0);
}

TEST(Gram, CorrelatedFeaturesScoreHigher)
{
    // Features 0 and 1 always fire together; 2 never with them.
    std::vector<std::vector<double>> series;
    for (int t = 0; t < 10; ++t) {
        double v = (t % 2) ? 1.0 : 0.0;
        series.push_back({v, v, 1.0 - v});
    }
    Matrix g = gramMatrix(series);
    EXPECT_GT(g.at(0, 1), g.at(0, 2));
}

TEST(Gram, DifferentStylesNonZeroLoss)
{
    std::vector<std::vector<double>> a = {{1, 0}, {1, 0}};
    std::vector<std::vector<double>> b = {{0, 1}, {0, 1}};
    EXPECT_GT(styleLoss(gramMatrix(a), gramMatrix(b)), 0.0);
}

TEST(Dataset, LeaveOneAttackOutExcludesHeldClass)
{
    Dataset data;
    data.classNames = {"benign", "a", "b"};
    Rng rng(9);
    for (int i = 0; i < 300; ++i) {
        Sample s;
        s.attackClass = i % 3;
        s.malicious = s.attackClass != 0;
        s.x = {0.1};
        data.add(s);
    }
    Dataset train, test;
    data.leaveOneAttackOut(1, 0.25, rng, train, test);
    EXPECT_EQ(train.countClass(1), 0u);
    EXPECT_GT(test.countClass(1), 0u);
    EXPECT_GT(train.countClass(2), 0u);
    // some benign goes to test too
    EXPECT_GT(test.countClass(0), 0u);
}

TEST(AmGan, GeneratesInUnitRange)
{
    AmGanConfig cfg;
    cfg.featureDim = 8;
    cfg.numClasses = 3;
    cfg.noiseDim = 8;
    cfg.genHidden = {16};
    cfg.discHidden = {8};
    AmGan gan(cfg);
    for (int cls = 0; cls < 3; ++cls) {
        auto x = gan.generate(cls);
        ASSERT_EQ(x.size(), 8u);
        for (double v : x) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

TEST(AmGan, LearnsClassConditioning)
{
    // Two far-apart classes: after training, generated samples of
    // each class must be closer to their own class mean.
    AmGanConfig cfg;
    cfg.featureDim = 6;
    cfg.numClasses = 2;
    cfg.noiseDim = 6;
    cfg.genHidden = {24, 16};
    cfg.discHidden = {12};
    cfg.seed = 77;
    AmGan gan(cfg);

    Dataset data;
    data.classNames = {"zero", "one"};
    Rng rng(8);
    for (int i = 0; i < 200; ++i) {
        Sample s;
        s.attackClass = i % 2;
        s.malicious = s.attackClass == 1;
        s.x.assign(6, 0.0);
        for (auto &v : s.x) {
            v = s.attackClass ? 0.8 + 0.1 * rng.nextDouble()
                              : 0.1 * rng.nextDouble();
        }
        data.add(s);
    }
    for (int e = 0; e < 12; ++e)
        gan.trainEpoch(data, 300);

    auto meanOf = [&](int cls) {
        double m = 0;
        for (int i = 0; i < 16; ++i) {
            auto x = gan.generate(cls);
            for (double v : x)
                m += v;
        }
        return m / (16.0 * 6.0);
    };
    EXPECT_GT(meanOf(1), meanOf(0) + 0.2)
        << "class conditioning must separate generated samples";
}

TEST(AmGan, AugmentationLabelsClasses)
{
    AmGanConfig cfg;
    cfg.featureDim = 4;
    cfg.numClasses = 2;
    cfg.noiseDim = 4;
    cfg.genHidden = {8};
    cfg.discHidden = {6};
    AmGan gan(cfg);
    Dataset ref;
    ref.classNames = {"benign", "attack"};
    for (int i = 0; i < 40; ++i) {
        Sample s;
        s.attackClass = i % 2;
        s.malicious = s.attackClass == 1;
        s.x = {0.5, 0.5, 0.5, 0.5};
        ref.add(s);
    }
    gan.trainEpoch(ref, 100);
    Dataset aug = gan.generateAugmentation(ref, 10);
    EXPECT_GT(aug.size(), 0u);
    for (const auto &s : aug.samples)
        EXPECT_EQ(s.malicious, s.attackClass == 1);
}

/** Bit-exact FNV-1a over every generator weight and bias. */
uint64_t
generatorDigest(const Mlp &gen)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    auto fold = [&h](double v) {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        for (int b = 0; b < 8; ++b) {
            h ^= (bits >> (8 * b)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    for (size_t l = 0; l < gen.numLayers(); ++l) {
        for (double v : gen.layer(l).w)
            fold(v);
        for (double v : gen.layer(l).b)
            fold(v);
    }
    return h;
}

uint64_t
trainAndDigestGan()
{
    AmGanConfig cfg;
    cfg.featureDim = 8;
    cfg.numClasses = 2;
    cfg.noiseDim = 8;
    cfg.genHidden = {16, 12};
    cfg.discHidden = {8};
    cfg.seed = 2024;
    AmGan gan(cfg);

    Dataset data;
    data.classNames = {"benign", "attack"};
    Rng rng(31);
    for (int i = 0; i < 80; ++i) {
        Sample s;
        s.attackClass = i % 2;
        s.malicious = s.attackClass == 1;
        s.x.assign(8, 0.0);
        for (auto &v : s.x) {
            v = s.attackClass ? 0.7 + 0.2 * rng.nextDouble()
                              : 0.3 * rng.nextDouble();
        }
        data.add(s);
    }
    for (int e = 0; e < 4; ++e)
        gan.trainEpoch(data, 250);
    return generatorDigest(gan.generator());
}

TEST(GoldenSeeds, GanTrainingDigestIsPinnedAndThreadInvariant)
{
    // GAN training determinism is a vaccine-pipeline contract: the
    // augmentation set (and everything trained on it) must be
    // reproducible from a seed, and must not depend on the global
    // thread-pool width. Pinned like the test_golden digests —
    // re-pin only on an intentional semantic change to gan.cc/mlp.cc.
    constexpr uint64_t kPinned = 0xeb2c52250823d38cULL;
    uint64_t serial = trainAndDigestGan();

    setGlobalThreadCount(4);
    uint64_t threaded = trainAndDigestGan();
    setGlobalThreadCount(1);

    EXPECT_EQ(serial, threaded)
        << "GAN training must not depend on thread-pool width";
    EXPECT_EQ(serial, kPinned)
        << "GAN digest moved: actual 0x" << std::hex << serial
        << " (pinned 0x" << kPinned << ")";
}

// ---------------------------------------------------------------
// Arms-race retraining round trip: vaccination consumes the
// adversary's successful samples (Vaccinator::run(train, evaders,
// boost)) and the retrained model's flag rate on the evader corpus
// strictly improves. All seeds pinned — the numbers are exactly
// reproducible.
// ---------------------------------------------------------------

/** Fraction of @p data the perceptron flags malicious. */
double
perceptronFlagRate(const Perceptron &p, const Dataset &data)
{
    size_t flagged = 0;
    for (const auto &s : data.samples)
        flagged += p.predict(s.x) ? 1 : 0;
    return data.samples.empty()
               ? 0.0
               : (double)flagged / data.samples.size();
}

TEST(Vaccination, RetrainingOnEvaderSamplesImprovesFlagRate)
{
    // Synthetic two-signature world, the arena's geometry in
    // miniature. Stock attacks light up feature group A (dims
    // 0-7); the evader masks group A down to benign levels and
    // leaks through group B (dims 8-15) instead — a direction the
    // traditionally-trained model never learned to weight because
    // group B is uninformative in the original corpus.
    constexpr size_t dim = 16;
    Rng gen(0x1234);
    auto benignish = [&](Sample &s, size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            s.x[i] = 0.35 * gen.nextDouble();
    };
    auto attackish = [&](Sample &s, size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            s.x[i] = 0.55 + 0.4 * gen.nextDouble();
    };

    Dataset train;
    train.classNames = {"benign", "attack"};
    for (int i = 0; i < 140; ++i) {
        Sample s;
        s.x.assign(dim, 0.0);
        s.malicious = i % 2 == 1;
        s.attackClass = s.malicious ? 1 : 0;
        if (s.malicious) {
            attackish(s, 0, 8);
            benignish(s, 8, dim);
        } else {
            benignish(s, 0, dim);
        }
        train.add(s);
    }
    Dataset evaders;
    evaders.classNames = train.classNames;
    for (int i = 0; i < 48; ++i) {
        Sample s;
        s.x.assign(dim, 0.0);
        s.malicious = true;
        s.attackClass = 1;
        benignish(s, 0, 8);  // group A masked to benign levels
        attackish(s, 8, dim); // the unmonitored leak direction
        evaders.add(s);
    }

    auto train_and_tune = [&](const Dataset &data) {
        Perceptron p(dim, 7);
        Rng rng(11);
        p.fit(data, 20, 0.05, rng);
        p.tuneThreshold(train, 0.002);
        return p;
    };

    Perceptron before = train_and_tune(train);
    double flag_before = perceptronFlagRate(before, evaders);
    EXPECT_LT(flag_before, 0.50)
        << "evader corpus must actually evade the pre-retrain "
           "model for the round trip to mean anything";

    VaccinationConfig vcfg;
    vcfg.epochs = 4;
    vcfg.itersPerEpoch = 250;
    vcfg.augmentPerClass = 40;
    vcfg.adversarialPerClass = 40;
    vcfg.gan.noiseDim = 8;
    vcfg.gan.genHidden = {16, 12};
    vcfg.gan.discHidden = {8};
    vcfg.minedFeatures = 0; // 16-dim toy space: no HPC mining
    vcfg.seed = 2024;
    Vaccinator vac(vcfg);
    VaccinationResult vr = vac.run(train, evaders, 8);

    // The evaders (and their oversampled copies) are in the
    // augmented set, still labeled malicious.
    EXPECT_GE(vr.augmented.samples.size(),
              train.samples.size() + 8 * evaders.samples.size());

    Perceptron after = train_and_tune(vr.augmented);
    double flag_after = perceptronFlagRate(after, evaders);
    EXPECT_GT(flag_after, flag_before)
        << "retraining on the evader corpus must strictly improve "
           "evader detection";
    EXPECT_GE(flag_after, 0.90);
    // The benign FP budget still holds on the original corpus.
    size_t benign_fp = 0, benign_n = 0;
    for (const auto &s : train.samples) {
        if (s.malicious)
            continue;
        ++benign_n;
        benign_fp += after.predict(s.x) ? 1 : 0;
    }
    EXPECT_LE((double)benign_fp / benign_n, 0.002 + 1e-9);
}

} // anonymous namespace
} // namespace evax
