/**
 * @file
 * Unit and property tests for the deterministic parallel engine:
 * thread-pool mechanics (empty ranges, small ranges, exception
 * propagation, nested jobs) and the scheduling-independence
 * property — identical results at 1, 4 and 13 threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/parallel.hh"
#include "util/rng.hh"

namespace evax
{
namespace
{

TEST(ThreadPool, EmptyRangeNeverInvokes)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.forEach(0, [&](size_t) { calls++; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, RangeSmallerThanWorkersRunsEachIndexOnce)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    pool.forEach(3, [&](size_t i) { hits[i]++; });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, LargeRangeCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(2000);
    pool.forEach(hits.size(), [&](size_t i) { hits[i]++; });
    for (auto &h : hits)
        ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleLanePoolIsServiceable)
{
    ThreadPool pool(1);
    std::vector<int> out(64, 0);
    pool.forEach(out.size(), [&](size_t i) { out[i] = (int)i; });
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], (int)i);
}

TEST(ThreadPool, PropagatesLowestIndexException)
{
    ThreadPool pool(4);
    // Every task throws; the caller must deterministically see the
    // exception from index 0 regardless of scheduling.
    try {
        pool.forEach(100, [](size_t i) {
            throw std::runtime_error(std::to_string(i));
        });
        FAIL() << "expected forEach to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "0");
    }
}

TEST(ThreadPool, SurvivesExceptionAndStaysUsable)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.forEach(10,
                              [](size_t i) {
                                  if (i == 3)
                                      throw std::runtime_error("x");
                              }),
                 std::runtime_error);
    std::atomic<int> ran{0};
    pool.forEach(10, [&](size_t) { ran++; });
    EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, NestedCallsCompleteWithoutDeadlock)
{
    setGlobalThreadCount(4);
    constexpr size_t outer = 6, inner = 32;
    std::vector<std::vector<int>> out(outer);
    parallelFor(outer, [&](size_t o) {
        out[o].assign(inner, -1);
        parallelFor(inner,
                    [&](size_t i) { out[o][i] = (int)(o * inner + i); });
    });
    for (size_t o = 0; o < outer; ++o)
        for (size_t i = 0; i < inner; ++i)
            ASSERT_EQ(out[o][i], (int)(o * inner + i));
}

TEST(ThreadPool, NestedExceptionPropagatesToOuterCaller)
{
    setGlobalThreadCount(4);
    EXPECT_THROW(parallelFor(4,
                             [&](size_t) {
                                 parallelFor(8, [](size_t i) {
                                     if (i == 5)
                                         throw std::runtime_error("n");
                                 });
                             }),
                 std::runtime_error);
}

TEST(ParallelMap, ResultsLandInIndexOrder)
{
    setGlobalThreadCount(4);
    auto v = parallelMap(257, [](size_t i) { return i * i; });
    ASSERT_EQ(v.size(), 257u);
    for (size_t i = 0; i < v.size(); ++i)
        ASSERT_EQ(v[i], i * i);
}

/**
 * The headline property: a seeded, index-derived computation gives
 * bit-identical output at 1, 4 and 13 threads.
 */
TEST(ParallelMap, OutputIdenticalAcrossThreadCounts)
{
    constexpr uint64_t base_seed = 0xfeedULL;
    constexpr size_t n = 311;
    auto trial = [&] {
        return parallelMap(n, [&](size_t i) {
            Rng rng = Rng::forTask(base_seed, i);
            // A few dependent draws so stream mixing bugs show up.
            double acc = 0.0;
            for (int k = 0; k < 16; ++k)
                acc += rng.nextDouble() * (double)(k + 1);
            acc += (double)rng.nextBounded(1000);
            acc += rng.nextGaussian();
            return acc;
        });
    };

    setGlobalThreadCount(1);
    auto serial = trial();
    for (unsigned threads : {4u, 13u}) {
        setGlobalThreadCount(threads);
        auto parallel = trial();
        ASSERT_EQ(parallel.size(), serial.size());
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(parallel[i], serial[i])
                << "divergence at index " << i << " with "
                << threads << " threads";
    }
}

TEST(TaskSeed, DerivedSeedsAreStableAndWellSpread)
{
    // Stable: pure function of (base, index).
    EXPECT_EQ(deriveTaskSeed(7, 0), deriveTaskSeed(7, 0));
    EXPECT_EQ(deriveTaskSeed(7, 41), deriveTaskSeed(7, 41));

    // Spread: no collisions across adjacent bases and indices.
    std::set<uint64_t> seen;
    for (uint64_t base = 0; base < 8; ++base)
        for (uint64_t i = 0; i < 512; ++i)
            seen.insert(deriveTaskSeed(base, i));
    EXPECT_EQ(seen.size(), 8u * 512u);

    // Independent: generators for neighbor tasks diverge at once.
    Rng a = Rng::forTask(7, 1), b = Rng::forTask(7, 2);
    EXPECT_NE(a.next(), b.next());
}

TEST(TaskSeed, EnvConfigParsesStrictly)
{
    // defaultThreadCount falls back to hardware for junk values.
    // (Set/restore around the call; the global pool is untouched.)
    setenv("EVAX_THREADS", "3", 1);
    EXPECT_EQ(defaultThreadCount(), 3u);
    setenv("EVAX_THREADS", "0", 1);
    EXPECT_GE(defaultThreadCount(), 1u);
    setenv("EVAX_THREADS", "abc", 1);
    EXPECT_GE(defaultThreadCount(), 1u);
    unsetenv("EVAX_THREADS");
    EXPECT_GE(defaultThreadCount(), 1u);
}

} // anonymous namespace
} // namespace evax
