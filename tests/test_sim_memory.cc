/**
 * @file
 * Memory-subsystem unit tests: cache geometry/LRU/MSHR, TLB,
 * DRAM row-buffer + Rowhammer model, write queue, InvisiSpec
 * invisibility, plus property sweeps over cache configurations.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "sim/dram.hh"
#include "sim/memory.hh"
#include "sim/tlb.hh"

namespace evax
{
namespace
{

CacheConfig
smallCache()
{
    return {"tc", 4096, 4, 64, 2, 4}; // 16 sets x 4 ways
}

TEST(Cache, HitAfterFill)
{
    CounterRegistry reg;
    Cache c(smallCache(), reg);
    auto m = c.access(0x1000, false, 0, 20);
    EXPECT_FALSE(m.hit);
    auto h = c.access(0x1000, false, 100, 20);
    EXPECT_TRUE(h.hit);
    EXPECT_EQ(h.latency, 2u);
}

TEST(Cache, LruEvictsOldest)
{
    CounterRegistry reg;
    Cache c(smallCache(), reg);
    // Fill one set (stride = 16 sets * 64B).
    for (int w = 0; w < 4; ++w)
        c.access(0x1000 + w * 1024, false, w * 100, 20);
    // Touch way 0 again so way 1 is LRU.
    c.access(0x1000, false, 500, 20);
    // New line evicts way 1.
    c.access(0x1000 + 4 * 1024, false, 600, 20);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x1000 + 1 * 1024));
}

TEST(Cache, DirtyEvictIsWriteback)
{
    CounterRegistry reg;
    Cache c(smallCache(), reg);
    c.access(0x1000, true, 0, 20); // dirty line
    for (int w = 1; w <= 4; ++w)
        c.access(0x1000 + w * 1024, false, w * 100, 20);
    EXPECT_GE(reg.valueByName("tc.writebacks"), 1.0);
}

TEST(Cache, CleanEvictCounted)
{
    CounterRegistry reg;
    Cache c(smallCache(), reg);
    for (int w = 0; w <= 4; ++w)
        c.access(0x1000 + w * 1024, false, w * 100, 20);
    EXPECT_GE(reg.valueByName("tc.cleanEvicts"), 1.0);
}

TEST(Cache, MshrMergesConcurrentMisses)
{
    // Non-allocating (InvisiSpec-style) accesses leave the miss in
    // flight; a second access to the same line merges into it.
    CounterRegistry reg;
    Cache c(smallCache(), reg);
    c.access(0x2000, false, 0, 50, /*allocate=*/false);
    auto merged =
        c.access(0x2010, false, 10, 50, /*allocate=*/false);
    EXPECT_TRUE(merged.mshrMerge);
    EXPECT_LT(merged.latency, 52u);
    EXPECT_GE(reg.valueByName("tc.mshrMisses"), 1.0);
}

TEST(Cache, MshrFullBlocks)
{
    CounterRegistry reg;
    Cache c(smallCache(), reg); // 4 MSHRs
    for (int i = 0; i < 4; ++i)
        c.access(0x10000 + i * 4096, false, 0, 200);
    auto r = c.access(0x90000, false, 1, 200);
    EXPECT_TRUE(r.mshrFull);
}

TEST(Cache, InvalidateRemovesLine)
{
    CounterRegistry reg;
    Cache c(smallCache(), reg);
    c.access(0x3000, false, 0, 20);
    EXPECT_TRUE(c.probe(0x3000));
    EXPECT_TRUE(c.invalidate(0x3000));
    EXPECT_FALSE(c.probe(0x3000));
    EXPECT_FALSE(c.invalidate(0x3000));
}

TEST(Cache, NoAllocateLeavesNoFootprint)
{
    CounterRegistry reg;
    Cache c(smallCache(), reg);
    c.access(0x4000, false, 0, 20, /*allocate=*/false);
    EXPECT_FALSE(c.probe(0x4000));
}

/** Property sweep: geometry invariants over configurations. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{
};

TEST_P(CacheGeometry, FillEntireCacheNoEvicts)
{
    auto [size, assoc] = GetParam();
    CounterRegistry reg;
    Cache c({"tc", size, assoc, 64, 2, 64}, reg);
    uint32_t lines = size / 64;
    for (uint32_t i = 0; i < lines; ++i)
        c.access((Addr)i * 64, false, i, 20);
    EXPECT_EQ(reg.valueByName("tc.replacements"), 0.0);
    // Every line present.
    for (uint32_t i = 0; i < lines; ++i)
        ASSERT_TRUE(c.probe((Addr)i * 64)) << i;
    // One more distinct line must evict.
    c.access((Addr)lines * 64, false, lines, 20);
    EXPECT_EQ(reg.valueByName("tc.replacements"), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(4096u, 1u),
                      std::make_tuple(4096u, 4u),
                      std::make_tuple(8192u, 8u),
                      std::make_tuple(32768u, 4u),
                      std::make_tuple(65536u, 8u)));

TEST(Tlb, MissThenHitThenEvict)
{
    CounterRegistry reg;
    Tlb tlb("tt", 2, 30, 4096, true, reg);
    EXPECT_FALSE(tlb.translate(0x1000, false).hit);
    EXPECT_TRUE(tlb.translate(0x1fff, false).hit); // same page
    tlb.translate(0x10000, false);
    tlb.translate(0x20000, false); // evicts LRU (page 1)
    EXPECT_FALSE(tlb.translate(0x1000, false).hit);
    EXPECT_GE(reg.valueByName("tt.rdMisses"), 3.0);
}

TEST(Tlb, FlushClears)
{
    CounterRegistry reg;
    Tlb tlb("tt", 8, 30, 4096, true, reg);
    tlb.translate(0x1000, false);
    tlb.flush();
    EXPECT_FALSE(tlb.translate(0x1000, false).hit);
    EXPECT_EQ(reg.valueByName("tt.flushes"), 1.0);
}

TEST(Dram, RowBufferHitsAndMisses)
{
    CoreParams params;
    CounterRegistry reg;
    Dram dram(params, reg);
    auto a = dram.access(0x1000, false, 0);
    EXPECT_FALSE(a.rowHit);
    auto b = dram.access(0x1040, false, 10); // same row
    EXPECT_TRUE(b.rowHit);
    EXPECT_LT(b.latency, a.latency);
}

TEST(Dram, HammeringFlipsBitsBenignDoesNot)
{
    CoreParams params;
    params.rowhammerThreshold = 100;
    CounterRegistry reg;
    Dram dram(params, reg);
    Addr row_a = 0;
    Addr row_b = (Addr)params.dramRowSize * params.dramBanks;
    for (int i = 0; i < 300; ++i) {
        dram.access(row_a, false, i * 2);
        dram.access(row_b, false, i * 2 + 1);
    }
    EXPECT_GT(dram.totalBitFlips(), 0u);

    CounterRegistry reg2;
    Dram calm(params, reg2);
    for (int i = 0; i < 300; ++i)
        calm.access(0x1000, false, i); // row-buffer hits only
    EXPECT_EQ(calm.totalBitFlips(), 0u);
}

TEST(Dram, RefreshResetsHammerCount)
{
    CoreParams params;
    params.rowhammerThreshold = 1000;
    params.dramRefreshInterval = 100;
    CounterRegistry reg;
    Dram dram(params, reg);
    Addr row_a = 0;
    Addr row_b = (Addr)params.dramRowSize * params.dramBanks;
    // Interleave rows but let refreshes clear the ledger.
    for (uint64_t i = 0; i < 5000; ++i)
        dram.access(i % 2 ? row_a : row_b, false, i * 60);
    EXPECT_EQ(dram.totalBitFlips(), 0u);
    EXPECT_GT(reg.valueByName("dram.refreshes"), 10.0);
}

TEST(MemorySystem, InvisibleLoadLeavesNoCacheState)
{
    CoreParams params;
    CounterRegistry reg;
    MemorySystem mem(params, reg);
    mem.load(0x5000, 8, 0, /*invisible=*/true);
    EXPECT_FALSE(mem.dcache().probe(0x5000));
    EXPECT_FALSE(mem.l2().probe(0x5000));
    // Expose makes it visible.
    mem.expose(0x5000, 10);
    EXPECT_TRUE(mem.dcache().probe(0x5000));
}

TEST(MemorySystem, WriteQueueServicesLoads)
{
    CoreParams params;
    CounterRegistry reg;
    MemorySystem mem(params, reg);
    EXPECT_TRUE(mem.storeCommit(0x6000, 8, 0));
    LoadResult r = mem.load(0x6008, 8, 1, false);
    EXPECT_TRUE(r.hitWriteQueue);
    EXPECT_GT(reg.valueByName("wq.bytesReadWrQ"), 0.0);
}

TEST(MemorySystem, WriteQueueCapacityAndDrain)
{
    CoreParams params;
    CounterRegistry reg;
    MemorySystem mem(params, reg);
    unsigned accepted = 0;
    for (unsigned i = 0; i < 20; ++i)
        accepted += mem.storeCommit(0x7000 + i * 64, 8, 0) ? 1 : 0;
    EXPECT_EQ(accepted, params.writeBuffers);
    // Drain and retry.
    for (Cycle t = 1; t < 200; ++t)
        mem.tick(t);
    EXPECT_TRUE(mem.storeCommit(0x9000, 8, 200));
}

TEST(MemorySystem, ClflushEvictsBothLevels)
{
    CoreParams params;
    CounterRegistry reg;
    MemorySystem mem(params, reg);
    mem.load(0x8000, 8, 0, false);
    EXPECT_TRUE(mem.dcache().probe(0x8000));
    mem.clflush(0x8000, 10);
    EXPECT_FALSE(mem.dcache().probe(0x8000));
    EXPECT_FALSE(mem.l2().probe(0x8000));
    EXPECT_EQ(reg.valueByName("sys.clflushes"), 1.0);
}

} // anonymous namespace
} // namespace evax
