/**
 * @file
 * Timeline telemetry tests: the Timeline store and its writers, the
 * JSON reader/differ underneath evax_inspect, the interval sampler,
 * Perfetto export structure, statreg JSON validity, manifests, and
 * the determinism + attack-visibility acceptance criteria
 * (detector-flag instant followed by a defense-mode span).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "core/endtoend.hh"
#include "core/experiment.hh"
#include "core/vaccination.hh"
#include "hpc/timeline_sampler.hh"
#include "util/json.hh"
#include "util/manifest.hh"
#include "util/parallel.hh"
#include "util/statreg.hh"
#include "util/timeline.hh"
#include "util/trace_export.hh"

namespace evax
{
namespace
{

/** FNV-1a over raw bytes (pinned-digest idiom, test_integration). */
uint64_t
hashBytes(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

TEST(Timeline, SeriesFindOrCreateAndPoints)
{
    Timeline tl;
    EXPECT_TRUE(tl.empty());
    tl.addPoint("core.ipc", 1000, 2500, 0.4);
    tl.addPoint("core.ipc", 2000, 5200, 0.37);
    tl.addPoint("other", 1000, 2500, 7.0);
    EXPECT_FALSE(tl.empty());
    ASSERT_EQ(tl.allSeries().size(), 2u);
    const TimelineSeries *s = tl.findSeries("core.ipc");
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->points.size(), 2u);
    EXPECT_EQ(s->points[1].inst, 2000u);
    EXPECT_DOUBLE_EQ(s->points[1].value, 0.37);
    EXPECT_EQ(tl.findSeries("missing"), nullptr);
    // Re-requesting a series must not duplicate it.
    tl.series("core.ipc");
    EXPECT_EQ(tl.allSeries().size(), 2u);
}

TEST(Timeline, SpansCloseOnceAndOpenSpansAreFinalized)
{
    Timeline tl;
    size_t a = tl.beginSpan("defense.mode", "fence", 100, 300);
    size_t b = tl.beginSpan("defense.mode", "fence", 900, 2700);
    tl.endSpan(a, 500, 1500);
    // Second end on the same span must not move it.
    tl.endSpan(a, 999, 9999);
    tl.closeOpenSpans(1000, 3000);
    ASSERT_EQ(tl.spans().size(), 2u);
    EXPECT_EQ(tl.spans()[a].endInst, 500u);
    EXPECT_FALSE(tl.spans()[a].open);
    EXPECT_EQ(tl.spans()[b].endInst, 1000u);
    EXPECT_EQ(tl.spans()[b].endCycle, 3000u);
    EXPECT_FALSE(tl.spans()[b].open);
}

TEST(Timeline, CsvHasHeaderAndOneRowPerRecord)
{
    Timeline tl;
    tl.addPoint("core.ipc", 1000, 2500, 0.5);
    size_t id = tl.beginSpan("defense.mode", "invisi", 10, 20);
    tl.endSpan(id, 30, 60);
    tl.addInstant("detector.flag", "evax", 1000, 2500);
    std::ostringstream os;
    tl.writeCsv(os);
    std::string csv = os.str();
    EXPECT_NE(csv.find("kind,track,label,inst,cycle,end_inst,"
                       "end_cycle,value"),
              std::string::npos);
    EXPECT_NE(csv.find("point,core.ipc"), std::string::npos);
    EXPECT_NE(csv.find("span,defense.mode,invisi,10,20,30,60,"),
              std::string::npos);
    EXPECT_NE(csv.find("instant,detector.flag,evax,1000,2500"),
              std::string::npos);
}

TEST(Timeline, JsonRoundTripIsByteIdentical)
{
    Timeline tl;
    tl.series("core.ipc", "insts/cycle", true);
    tl.addPoint("core.ipc", 1000, 2500, 0.4217391304347826);
    tl.addPoint("core.ipc", 2000, 5200, 0.372);
    size_t id = tl.beginSpan("defense.mode", "invisi", 10, 20);
    tl.endSpan(id, 30, 60);
    tl.addInstant("detector.flag", "evax \"quoted\"", 1000, 2500);

    std::ostringstream os;
    tl.writeJson(os);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;

    Timeline back;
    ASSERT_TRUE(Timeline::fromJson(doc, back, &err)) << err;
    std::ostringstream os2;
    back.writeJson(os2);
    EXPECT_EQ(os.str(), os2.str());
}

TEST(Json, StrictRejectsNanLenientAccepts)
{
    json::Value v;
    EXPECT_FALSE(json::parse("{\"x\": nan}", v));
    std::string err;
    ASSERT_TRUE(json::parseLenient("{\"x\": nan, \"y\": -inf}", v,
                                   &err))
        << err;
    ASSERT_TRUE(std::isnan(v.find("x")->number));
    ASSERT_TRUE(std::isinf(v.find("y")->number));
}

TEST(Json, WriteNumberEmitsNullForNonFinite)
{
    std::ostringstream os;
    json::writeNumber(os, std::numeric_limits<double>::quiet_NaN());
    os << " ";
    json::writeNumber(os, std::numeric_limits<double>::infinity());
    os << " ";
    json::writeNumber(os, 42.0);
    os << " ";
    json::writeNumber(os, 0.5);
    EXPECT_EQ(os.str(), "null null 42 0.5");
}

TEST(Json, FlattenAndDiffDetectTenPercentRegression)
{
    json::Value a, b;
    ASSERT_TRUE(json::parse(
        "{\"core\":{\"ipc\":1.0,\"cycles\":100}}", a));
    ASSERT_TRUE(json::parse(
        "{\"core\":{\"ipc\":0.9,\"cycles\":100}}", b));
    auto flat = json::flattenNumeric(a);
    ASSERT_EQ(flat.size(), 2u);
    EXPECT_DOUBLE_EQ(flat.at("core.ipc"), 1.0);

    json::DiffOptions opt;
    opt.tolerance = 0.05;
    json::DiffReport r = json::diffNumeric(a, b, opt);
    EXPECT_EQ(r.failures, 1u);
    EXPECT_FALSE(r.ok());

    opt.tolerance = 0.15;
    EXPECT_TRUE(json::diffNumeric(a, b, opt).ok());

    // Identical documents are clean at zero tolerance.
    EXPECT_TRUE(json::diffNumeric(a, a, json::DiffOptions{}).ok());
}

TEST(Json, DiffFlagsMissingPathsUnlessAllowed)
{
    json::Value a, b;
    ASSERT_TRUE(json::parse("{\"x\":1,\"y\":2}", a));
    ASSERT_TRUE(json::parse("{\"x\":1}", b));
    EXPECT_FALSE(json::diffNumeric(a, b, {}).ok());
    json::DiffOptions opt;
    opt.allowMissing = true;
    EXPECT_TRUE(json::diffNumeric(a, b, opt).ok());
}

TEST(StatRegJson, NonFiniteStatsStillDumpLegalJson)
{
    StatRegistry sr;
    sr.number("bad.rate").set(
        std::numeric_limits<double>::quiet_NaN());
    sr.number("bad.inf").set(
        std::numeric_limits<double>::infinity());
    sr.avg("empty.avg"); // zero samples: mean/stddev are nan-prone
    sr.avg("fed.avg").add(2.5);
    sr.setScalar("plain", 7);

    std::ostringstream os;
    sr.dumpStats(os, StatsFormat::Json);
    json::Value doc;
    std::string err;
    // Strict RFC-8259 parse: bare nan/inf tokens would fail here.
    ASSERT_TRUE(json::parse(os.str(), doc, &err))
        << err << "\n" << os.str();

    EXPECT_TRUE(doc.find("bad.rate")->isNull());
    EXPECT_TRUE(doc.find("bad.inf")->isNull());
    const json::Value *avg = doc.find("empty.avg");
    ASSERT_NE(avg, nullptr);
    EXPECT_DOUBLE_EQ(avg->find("samples")->asNumber(-1), 0.0);
    EXPECT_DOUBLE_EQ(doc.find("fed.avg")->find("mean")->asNumber(),
                     2.5);
    EXPECT_DOUBLE_EQ(doc.find("plain")->asNumber(), 7.0);
}

TEST(TimelineSampler, DeltaCountersIpcAndGauges)
{
    CounterRegistry reg;
    CounterId ctr = reg.getOrAdd("test.events");
    Timeline tl;
    TimelineSamplerConfig cfg;
    cfg.intervalInsts = 100;
    cfg.counters = {"test.events", "not.a.counter"};
    TimelineSampler ts(reg, tl, cfg);
    double gauge = 5.0;
    ts.addGauge("test.gauge", [&gauge] { return gauge; }, "units");

    reg.inc(ctr, 10.0);
    EXPECT_FALSE(ts.tick(50, 120));    // before the boundary
    EXPECT_TRUE(ts.tick(105, 260));    // window 1 (overshoot ok)
    reg.inc(ctr, 4.0);
    gauge = 9.0;
    EXPECT_TRUE(ts.tick(210, 500));    // window 2
    ts.finish(250, 600);               // partial final window
    EXPECT_EQ(ts.windowsClosed(), 3u);

    const TimelineSeries *ipc = tl.findSeries("core.ipc");
    ASSERT_NE(ipc, nullptr);
    ASSERT_EQ(ipc->points.size(), 3u);
    EXPECT_DOUBLE_EQ(ipc->points[0].value, 105.0 / 260.0);
    EXPECT_DOUBLE_EQ(ipc->points[1].value,
                     (210.0 - 105.0) / (500.0 - 260.0));

    const TimelineSeries *ev = tl.findSeries("counter.test.events");
    ASSERT_NE(ev, nullptr);
    EXPECT_TRUE(ev->delta);
    ASSERT_EQ(ev->points.size(), 3u);
    EXPECT_DOUBLE_EQ(ev->points[0].value, 10.0);
    EXPECT_DOUBLE_EQ(ev->points[1].value, 4.0);
    EXPECT_DOUBLE_EQ(ev->points[2].value, 0.0);

    // The unknown counter name was ignored, not registered.
    EXPECT_EQ(tl.findSeries("counter.not.a.counter"), nullptr);

    const TimelineSeries *g = tl.findSeries("test.gauge");
    ASSERT_NE(g, nullptr);
    EXPECT_DOUBLE_EQ(g->points[0].value, 5.0);
    EXPECT_DOUBLE_EQ(g->points[1].value, 9.0);
}

TEST(Manifest, SaveIsStrictJsonWithProvenanceFields)
{
    RunManifest m = RunManifest::forTool("unit-test");
    m.addSeed(13);
    m.addSeed(9);
    m.setConfig("attack", "spectre-pht");
    m.setConfig("window", (uint64_t)50000);
    m.addArtifact("a.csv");
    m.addArtifact("a.csv"); // duplicates collapse
    m.addArtifact("b.json");

    std::ostringstream os;
    m.writeJson(os);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;
    EXPECT_EQ(doc.find("schema")->asString(), "evax-manifest-v1");
    EXPECT_EQ(doc.find("tool")->asString(), "unit-test");
    EXPECT_FALSE(doc.find("git")->asString().empty());
    ASSERT_EQ(doc.find("seeds")->array.size(), 2u);
    EXPECT_DOUBLE_EQ(doc.find("seeds")->array[0].asNumber(), 13.0);
    EXPECT_EQ(doc.find("config")->find("attack")->asString(),
              "spectre-pht");
    EXPECT_DOUBLE_EQ(
        doc.find("config")->find("window")->asNumber(), 50000.0);
    ASSERT_EQ(doc.find("artifacts")->array.size(), 2u);
    EXPECT_GE(doc.find("wall_seconds")->asNumber(-1.0), 0.0);
    EXPECT_GE(doc.find("threads")->asNumber(), 1.0);
}

TEST(PerfettoExport, EmptyInputsStillProduceLoadableJson)
{
    Timeline tl;
    std::ostringstream os;
    writePerfetto(os, tl, {});
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;
    ASSERT_NE(doc.find("traceEvents"), nullptr);
    // Just the process_name metadata record.
    EXPECT_EQ(doc.find("traceEvents")->array.size(), 1u);
}

TEST(PerfettoExport, CountersSlicesAndInstantsAreEmitted)
{
    Timeline tl;
    tl.addPoint("core.ipc", 1000, 2500, 0.4);
    size_t id = tl.beginSpan("defense.mode", "invisi", 10, 20);
    tl.endSpan(id, 30, 60);
    tl.addInstant("detector.flag", "evax", 1000, 2500);

    std::ostringstream os;
    writePerfetto(os, tl, {});
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;

    size_t counters = 0, slices = 0, instants = 0;
    for (const auto &e : doc.find("traceEvents")->array) {
        const std::string &ph = e.find("ph")->asString();
        if (ph == "C")
            ++counters;
        else if (ph == "X")
            ++slices;
        else if (ph == "i")
            ++instants;
    }
    EXPECT_EQ(counters, 1u);
    EXPECT_EQ(slices, 1u);
    EXPECT_EQ(instants, 1u);
}

/**
 * Quick-scale trained experiment shared by the gated-run tests
 * (corpus + detector training takes seconds; do it once).
 */
const ExperimentSetup &
sharedSetup()
{
    static ExperimentSetup setup =
        buildExperiment(ExperimentScale::quick(), 13);
    return setup;
}

GatedRunConfig
gatedTimelineConfig(const ExperimentSetup &setup, Timeline *tl)
{
    GatedRunConfig cfg;
    cfg.profile = setup.profile;
    cfg.adaptive.secureMode = DefenseMode::InvisiSpecFuturistic;
    cfg.adaptive.secureWindowInsts = 50000;
    cfg.timeline = tl;
    return cfg;
}

TEST(TimelineEndToEnd, SpectrePhtRunShowsFlagThenDefenseSpan)
{
    const ExperimentSetup &setup = sharedSetup();
    Timeline tl;
    GatedRunConfig cfg = gatedTimelineConfig(setup, &tl);
    auto atk = AttackRegistry::create("spectre-pht", 9, 25000);
    GatedRunResult g = runGated(*atk, *setup.evax, cfg);
    ASSERT_GT(g.flags, 0u);

    // The detector-flag instant exists...
    const TimelineInstant *flag = nullptr;
    for (const auto &in : tl.instants()) {
        if (in.track == "detector.flag" && !flag)
            flag = &in;
    }
    ASSERT_NE(flag, nullptr);

    // ...and the defense-mode span begins within one sampling
    // window of it (the controller arms inside the same callback).
    const TimelineSpan *span = nullptr;
    for (const auto &sp : tl.spans()) {
        if (sp.track == "defense.mode" && !span)
            span = &sp;
    }
    ASSERT_NE(span, nullptr);
    EXPECT_EQ(span->label,
              std::string(
                  defenseModeName(DefenseMode::InvisiSpecFuturistic)));
    EXPECT_GE(span->beginInst, flag->inst);
    EXPECT_LE(span->beginInst - flag->inst, cfg.sampleInterval);
    EXPECT_FALSE(span->open);
    EXPECT_GT(span->endInst, span->beginInst);

    // Per-window score/verdict series cover every window, and the
    // verdict is 1 at the flag instant's window.
    const TimelineSeries *score = tl.findSeries("detector.score");
    const TimelineSeries *verdict =
        tl.findSeries("detector.verdict");
    ASSERT_NE(score, nullptr);
    ASSERT_NE(verdict, nullptr);
    EXPECT_EQ(score->points.size(), g.windows);
    EXPECT_EQ(verdict->points.size(), g.windows);
    bool saw_flagged_window = false;
    for (const auto &p : verdict->points) {
        if (p.inst == flag->inst && p.value == 1.0)
            saw_flagged_window = true;
    }
    EXPECT_TRUE(saw_flagged_window);

    // Occupancy gauges and per-interval IPC rode along.
    EXPECT_NE(tl.findSeries("core.ipc"), nullptr);
    EXPECT_NE(tl.findSeries("core.rob.occupancy"), nullptr);

    // The whole run exports to a Perfetto trace with at least one
    // counter track and the flag instant, and parses strictly.
    std::ostringstream os;
    writePerfetto(os, tl, trace::snapshot());
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;
    bool has_counter = false, has_flag_instant = false;
    for (const auto &e : doc.find("traceEvents")->array) {
        const std::string &ph = e.find("ph")->asString();
        if (ph == "C")
            has_counter = true;
        if (ph == "i" &&
            e.find("name")->asString() == setup.evax->name()) {
            has_flag_instant = true;
        }
    }
    EXPECT_TRUE(has_counter);
    EXPECT_TRUE(has_flag_instant);
}

/** One gated trial -> its timeline rendered as CSV + JSON. */
std::string
timelineDumpForTrial(const ExperimentSetup &setup, size_t trial)
{
    Timeline tl;
    GatedRunConfig cfg = gatedTimelineConfig(setup, &tl);
    const char *attack = trial % 2 ? "spectre-pht" : "meltdown";
    auto atk =
        AttackRegistry::create(attack, 9 + (unsigned)trial, 20000);
    runGated(*atk, *setup.evax, cfg);
    std::ostringstream os;
    tl.writeCsv(os);
    tl.writeJson(os);
    return os.str();
}

TEST(TimelineDeterminism, SerialAndParallelDumpsAreByteIdentical)
{
    const ExperimentSetup &setup = sharedSetup();
    constexpr size_t kTrials = 4;

    unsigned before = globalThreadCount();
    setGlobalThreadCount(1);
    std::vector<std::string> serial = parallelMap(
        kTrials,
        [&](size_t i) { return timelineDumpForTrial(setup, i); });
    setGlobalThreadCount(4);
    std::vector<std::string> parallel = parallelMap(
        kTrials,
        [&](size_t i) { return timelineDumpForTrial(setup, i); });
    setGlobalThreadCount(before);

    ASSERT_EQ(serial.size(), parallel.size());
    std::string all;
    for (size_t i = 0; i < kTrials; ++i) {
        EXPECT_EQ(serial[i], parallel[i]) << "trial " << i;
        all += serial[i];
    }

    // GoldenSeeds-style pin: any change to timeline content or
    // formatting must be deliberate (update the digest if so).
    uint64_t digest = hashBytes(all);
    EXPECT_EQ(digest, 0x5021139acbf63999ULL)
        << "actual digest: 0x" << std::hex << digest;
}

TEST(VaccinationTimeline, TrainingLossesBecomeSeries)
{
    VaccinationResult vr;
    vr.styleLossHistory = {0.9, 0.5, 0.2};
    vr.lossHistory = {{0.7, 1.2}, {0.6, 1.0}, {0.5, 0.9}};
    Timeline tl;
    appendTrainingTimeline(vr, tl);
    const TimelineSeries *style = tl.findSeries("train.style_loss");
    const TimelineSeries *disc =
        tl.findSeries("train.gan.disc_loss");
    const TimelineSeries *gen = tl.findSeries("train.gan.gen_loss");
    ASSERT_NE(style, nullptr);
    ASSERT_NE(disc, nullptr);
    ASSERT_NE(gen, nullptr);
    ASSERT_EQ(style->points.size(), 3u);
    EXPECT_DOUBLE_EQ(style->points[2].value, 0.2);
    EXPECT_DOUBLE_EQ(disc->points[1].value, 0.6);
    EXPECT_DOUBLE_EQ(gen->points[0].value, 1.2);
    EXPECT_EQ(gen->points[2].inst, 2u);
}

} // anonymous namespace
} // namespace evax
