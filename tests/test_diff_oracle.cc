/**
 * @file
 * Differential-oracle tests (ctest label "diff").
 *
 * Built two ways by tests/CMakeLists.txt:
 *  - test_diff_oracle: the unmutated simulator must survive the
 *    oracle — clean diff runs (including the 1M-instruction pinned-
 *    seed randomized run), fuzzer smoke, serializer round-trips and
 *    the minimizer unit test.
 *  - test_mut_<bug> (EVAX_MUTATION_ACTIVE + one EVAX_MUTATION_*
 *    define, core.cc recompiled with the seeded bug): only the
 *    matching detection test is compiled, and it asserts the oracle
 *    FLAGS the bug. That is the mutation-testing proof: every
 *    seeded bug must turn a green oracle red.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/core.hh"
#include "verify/fast_forward.hh"
#include "verify/fuzz_diff.hh"
#include "verify/ref_core.hh"

using namespace evax;

namespace
{

/**
 * Guaranteed store->load forwarding pairs, one per quad:
 * {div r9; alu r1; store [A] r1; load [A] src r1}. The load shares
 * the store's data register, so it cannot issue before the store's
 * address reaches the LSQ, and the long-latency divide pins the ROB
 * head so the store cannot commit out from under it — the load MUST
 * be serviced by forwarding on a correct pipeline.
 */
class PairStream : public InstStream
{
  public:
    explicit PairStream(uint64_t quads) : quads_(quads) {}

    bool
    next(MicroOp &op) override
    {
        if (pos_ >= quads_ * 4)
            return false;
        uint64_t quad = pos_ / 4;
        Addr line = 0x10000 + (quad % 64) * 64;
        op = MicroOp{};
        op.pc = 0x400000 + pos_ * 4;
        switch (pos_ % 4) {
          case 0:
            op.op = OpClass::IntDiv;
            op.src0 = 9;
            op.dst = 9;
            break;
          case 1:
            op.op = OpClass::IntAlu;
            op.src0 = 1;
            op.dst = 1;
            break;
          case 2:
            op.op = OpClass::Store;
            op.addr = line;
            op.src0 = 1;
            break;
          default:
            op.op = OpClass::Load;
            op.addr = line;
            op.src0 = 1;
            op.dst = 2;
            break;
        }
        ++pos_;
        return true;
    }

    void reset() override { pos_ = 0; }
    const char *name() const override { return "pair-stream"; }

  private:
    uint64_t quads_;
    uint64_t pos_ = 0;
};

/**
 * A serial dependency chain through long-latency producers: every
 * consumer reads the register its 12-cycle IntDiv predecessor
 * writes, so issuing any op before its producer completes is a
 * scheduling bug the issue probe must flag.
 */
class ChainStream : public InstStream
{
  public:
    explicit ChainStream(uint64_t length) : length_(length) {}

    bool
    next(MicroOp &op) override
    {
        if (pos_ >= length_)
            return false;
        op = MicroOp{};
        op.pc = 0x500000 + pos_ * 4;
        op.op = (pos_ % 2 == 0) ? OpClass::IntDiv : OpClass::IntAlu;
        op.src0 = 3;
        op.dst = 3;
        ++pos_;
        return true;
    }

    void reset() override { pos_ = 0; }
    const char *name() const override { return "chain-stream"; }

  private:
    uint64_t length_;
    uint64_t pos_ = 0;
};

[[maybe_unused]] DiffCase
defaultCase()
{
    DiffCase c;
    c.stream.kind = StreamSpec::Kind::Benign;
    c.stream.name = "compress";
    c.stream.seed = 7;
    c.stream.length = 8000;
    return c;
}

} // anonymous namespace

#ifndef EVAX_MUTATION_ACTIVE

TEST(DiffOracle, CleanWorkloadRuns)
{
    CoreParams params;
    for (const char *wl : {"compress", "pointerchase", "hashjoin"}) {
        StreamSpec spec;
        spec.name = wl;
        spec.seed = 7;
        spec.length = 12000;
        DiffReport rep =
            runDiffSpec(params, DefenseMode::None, spec);
        EXPECT_TRUE(rep.ok()) << wl << ": " << rep.summary();
        EXPECT_EQ(rep.committedOoo, rep.committedRef);
        EXPECT_GT(rep.checkpoints, 0u);
    }
}

TEST(DiffOracle, CleanAttackRunsAcrossDefenses)
{
    CoreParams params;
    struct Case { const char *atk; DefenseMode def; };
    Case cases[] = {
        {"meltdown", DefenseMode::None},
        {"spectre-pht", DefenseMode::FenceSpectre},
        {"lvi", DefenseMode::InvisiSpecFuturistic},
    };
    for (const Case &c : cases) {
        StreamSpec spec;
        spec.kind = StreamSpec::Kind::Attack;
        spec.name = c.atk;
        spec.seed = 11;
        spec.length = 10000;
        DiffReport rep = runDiffSpec(params, c.def, spec);
        EXPECT_TRUE(rep.ok()) << c.atk << ": " << rep.summary();
    }
}

TEST(DiffOracle, CleanSmallConfigurations)
{
    // Tight windows stress wrap/stall paths without any bug to find.
    CoreParams params;
    params.robEntries = 16;
    params.iqEntries = 8;
    params.lqEntries = 4;
    params.sqEntries = 4;
    params.fetchQueueEntries = 8;
    params.numPhysIntRegs = 64;
    StreamSpec spec;
    spec.name = "pointerchase";
    spec.seed = 3;
    spec.length = 9000;
    DiffReport rep = runDiffSpec(params, DefenseMode::None, spec);
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(DiffOracle, MillionInstructionRandomizedRun)
{
    // Acceptance gate: the unmutated simulator survives a
    // 1M-instruction randomized differential run, pinned seed, with
    // zero mismatches.
    CoreParams params;
    StreamSpec spec;
    spec.name = "hashjoin";
    spec.seed = 12345;
    spec.length = 1000000;
    DiffReport rep = runDiffSpec(params, DefenseMode::None, spec);
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_GE(rep.committedOoo, 1000000u);
    EXPECT_EQ(rep.committedOoo, rep.committedRef);
    EXPECT_GE(rep.checkpoints, 100u);
}

TEST(DiffOracle, ForwardingEnvelopeSeesForwardsWhenClean)
{
    CoreParams params;
    DiffRunner runner(params, DefenseMode::None);
    DiffReport rep = runner.run(
        [] { return std::make_unique<PairStream>(2000); });
    EXPECT_TRUE(rep.ok()) << rep.summary();
    // The envelope is only meaningful if the clean pipeline really
    // does forward on this stream.
    EXPECT_GT(runner.counters().valueByName("lsq.forwLoads"), 0.0);
}

TEST(DiffOracle, IssueProbeCleanOnDependencyChain)
{
    CoreParams params;
    DiffRunner runner(params, DefenseMode::None);
    DiffReport rep = runner.run(
        [] { return std::make_unique<ChainStream>(4000); });
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(DiffOracle, ReferenceStateIsDeterministic)
{
    ArchState a, b;
    MicroOp st;
    st.op = OpClass::Store;
    st.addr = 0x1040;
    st.src0 = 5;
    MicroOp ld;
    ld.op = OpClass::Load;
    ld.addr = 0x1048; // same 64B line
    ld.dst = 6;
    for (ArchState *s : {&a, &b}) {
        s->apply(st, 64);
        s->apply(ld, 64);
    }
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.regs[6], b.regs[6]);
    // The load must observe the store through the line image.
    ArchState c;
    c.apply(ld, 64);
    EXPECT_NE(c.regs[6], a.regs[6]);
}

TEST(DiffCaseIo, RoundTrip)
{
    DiffCase c = defaultCase();
    c.params.robEntries = 48;
    c.params.dcacheSize = 16 * 1024;
    c.params.dcacheAssoc = 2;
    c.defense = DefenseMode::InvisiSpecSpectre;
    c.stream.kind = StreamSpec::Kind::Attack;
    c.stream.name = "meltdown";
    c.stream.seed = 99;
    c.stream.length = 5000;

    DiffCase parsed;
    std::string err;
    ASSERT_TRUE(DiffCase::fromText(c.toText(), parsed, &err)) << err;
    EXPECT_EQ(parsed.toText(), c.toText());
    EXPECT_EQ(parsed.digest(), c.digest());
}

TEST(DiffCaseIo, CommentsAndCrlfIgnored)
{
    // Crash reproducers carry '#' report lines and may cross
    // platforms; both must parse.
    std::string text = "# a crash report line\r\n"
                       "stream.name=meltdown\r\n"
                       "stream.kind=attack\n"
                       "\n"
                       "# trailing comment\n";
    DiffCase parsed;
    std::string err;
    ASSERT_TRUE(DiffCase::fromText(text, parsed, &err)) << err;
    EXPECT_EQ(parsed.stream.name, "meltdown");
    EXPECT_EQ(parsed.stream.kind, StreamSpec::Kind::Attack);
}

TEST(DiffCaseIo, RejectsMalformedInput)
{
    DiffCase parsed;
    std::string err;
    EXPECT_FALSE(DiffCase::fromText("bogus=1\n", parsed, &err));
    EXPECT_NE(err.find("unknown key"), std::string::npos) << err;
    EXPECT_FALSE(DiffCase::fromText("rob=banana\n", parsed, &err));
    EXPECT_FALSE(
        DiffCase::fromText("defense=Moat\n", parsed, &err));
    EXPECT_FALSE(DiffCase::fromText("stream.name=no-such-kernel\n",
                                    parsed, &err));
    EXPECT_FALSE(
        DiffCase::fromText("stream.length=10\n", parsed, &err));
    EXPECT_FALSE(DiffCase::fromText("no equals sign", parsed, &err));
}

TEST(DiffCaseIo, ValidateRejectsBadGeometry)
{
    DiffCase c = defaultCase();
    c.params.dcacheSize = 3000; // not a power of two
    std::string err;
    EXPECT_FALSE(DiffCase::validate(c, &err));
    EXPECT_NE(err.find("dcache"), std::string::npos) << err;
}

TEST(DiffFuzzerTest, SmokeRunIsCleanAndDeterministic)
{
    FuzzOptions opts;
    opts.seed = 5;
    opts.iterations = 10;
    opts.maxStreamLength = 8000;

    DiffFuzzer a(opts), b(opts);
    FuzzStats sa = a.run();
    FuzzStats sb = b.run();
    EXPECT_EQ(sa.execs, 10u);
    EXPECT_EQ(sa.mismatches, 0u);
    // Determinism: identical options must reproduce the run exactly.
    EXPECT_EQ(sa.coverageFeatures, sb.coverageFeatures);
    EXPECT_EQ(sa.corpusAdds, sb.corpusAdds);
    ASSERT_EQ(a.corpus().size(), b.corpus().size());
    for (size_t i = 0; i < a.corpus().size(); ++i)
        EXPECT_EQ(a.corpus()[i].digest(), b.corpus()[i].digest());
}

TEST(DiffFuzzerTest, MutantsStayValid)
{
    FuzzOptions opts;
    opts.seed = 17;
    DiffFuzzer fuzzer(opts);
    DiffCase base = defaultCase();
    std::string err;
    for (int i = 0; i < 200; ++i) {
        DiffCase m = fuzzer.mutate(base);
        EXPECT_TRUE(DiffCase::validate(m, &err)) << err;
        base = m;
    }
}

TEST(DiffFuzzerTest, MinimizerShrinksWhilePreservingFailure)
{
    FuzzOptions opts;
    DiffFuzzer fuzzer(opts);
    DiffCase c = defaultCase();
    c.stream.length = 32000;
    c.stream.seed = 40;
    c.defense = DefenseMode::FenceSpectre;
    c.params.robEntries = 96;

    // Synthetic failure predicate (no simulation): the "bug" needs
    // a long-enough stream and survives every config reduction.
    auto stillFails = [](const DiffCase &cand) {
        return cand.stream.length >= 2000;
    };
    DiffCase small = fuzzer.minimize(c, stillFails);
    EXPECT_TRUE(stillFails(small));
    EXPECT_LE(small.stream.length, 2000u * 2);
    EXPECT_EQ(small.defense, DefenseMode::None);
    EXPECT_EQ(small.stream.seed, 1u);
    EXPECT_EQ(small.params.robEntries, CoreParams{}.robEntries);
}

#else // EVAX_MUTATION_ACTIVE: exactly one seeded-bug detection test

#ifdef EVAX_MUTATION_ROB_WRAP
TEST(MutationDetection, RobWrapOverwriteIsFlagged)
{
    // The seeded off-by-one lets dispatch overwrite the ROB head
    // slot once the ring wraps. robEntries=32 keeps the clobbering
    // young op inside the issue scan window so it commits and the
    // commit streams diverge (instead of deadlocking).
    CoreParams params;
    params.robEntries = 32;
    StreamSpec spec;
    spec.name = "pointerchase";
    spec.seed = 7;
    spec.length = 20000;
    DiffReport rep = runDiffSpec(params, DefenseMode::None, spec);
    EXPECT_FALSE(rep.ok())
        << "seeded ROB wrap bug escaped the oracle";
}
#endif

#ifdef EVAX_MUTATION_DROP_FORWARD
TEST(MutationDetection, DroppedStoreForwardIsFlagged)
{
    // With the LSQ forwarding walk deleted, a stream made of
    // guaranteed same-line store->load pairs executes with zero
    // forwards; the forwarding envelope calls that implausible.
    CoreParams params;
    DiffRunner runner(params, DefenseMode::None);
    DiffReport rep = runner.run(
        [] { return std::make_unique<PairStream>(2000); });
    ASSERT_FALSE(rep.ok())
        << "seeded forwarding bug escaped the oracle";
    bool sawForwarding = std::any_of(
        rep.mismatches.begin(), rep.mismatches.end(),
        [](const DiffMismatch &m) {
            return m.check == "envelope.forwarding";
        });
    EXPECT_TRUE(sawForwarding) << rep.summary();
}
#endif

#ifdef EVAX_MUTATION_STALE_SRCSREADY
TEST(MutationDetection, StaleSourcesReadyMemoIsFlagged)
{
    // Pre-seeding the readiness memo lets consumers issue while
    // their 12-cycle divide producers are still in flight; the
    // issue probe checks producer state independently of the memo.
    CoreParams params;
    DiffRunner runner(params, DefenseMode::None);
    DiffReport rep = runner.run(
        [] { return std::make_unique<ChainStream>(4000); });
    ASSERT_FALSE(rep.ok())
        << "seeded scheduling bug escaped the oracle";
    bool sawIssue = std::any_of(
        rep.mismatches.begin(), rep.mismatches.end(),
        [](const DiffMismatch &m) {
            return m.check == "issue.sourcesReady";
        });
    EXPECT_TRUE(sawIssue) << rep.summary();
}
#endif

#ifdef EVAX_MUTATION_NO_TRAP_REPLAY
TEST(MutationDetection, DroppedTrapReplayIsFlagged)
{
    // Squashing a trap as wrong-path discards the good-path ops
    // younger than the faulting load instead of replaying them, so
    // part of the committed stream goes missing relative to the
    // reference.
    CoreParams params;
    StreamSpec spec;
    spec.kind = StreamSpec::Kind::Attack;
    spec.name = "meltdown";
    spec.seed = 11;
    spec.length = 10000;
    DiffReport rep = runDiffSpec(params, DefenseMode::None, spec);
    EXPECT_FALSE(rep.ok())
        << "seeded trap-replay bug escaped the oracle";
}
#endif

#ifdef EVAX_MUTATION_LOST_WAKEUP
/** Serial chain of 150-cycle Rdrands: between one completion and
 *  the next issue the whole machine is inert, so event-driven
 *  progress depends entirely on the IssueReady wake marker the
 *  seeded bug drops. */
class RdrandChainStream : public InstStream
{
  public:
    explicit RdrandChainStream(uint64_t length) : length_(length) {}

    bool
    next(MicroOp &op) override
    {
        if (pos_ >= length_)
            return false;
        op = MicroOp{};
        op.pc = 0x600000 + pos_ * 4;
        op.op = OpClass::Rdrand;
        op.src0 = 3;
        op.dst = 3;
        ++pos_;
        return true;
    }

    void reset() override { pos_ = 0; }
    const char *name() const override { return "rdrand-chain"; }

  private:
    uint64_t length_;
    uint64_t pos_ = 0;
};

TEST(MutationDetection, LostWakeupIsFlagged)
{
    // The seeded bug drops wake markers for completions more than
    // 50 cycles out; rdrandLatency is 150, so an event-driven run
    // that goes inert on the chain jumps straight to its cycle
    // budget instead of waking at readyCycle. Identical budgets =>
    // far fewer commits than the tick loop, which never consults
    // the scheduler. The clean build keeps the two byte-identical
    // (tests/test_equivalence.cc), so this inequality is exactly
    // the lost-wakeup signal.
    const uint64_t budget = 30000;

    CounterRegistry tickReg;
    CoreParams tickParams;
    O3Core tickCore(tickParams, tickReg);
    RdrandChainStream tickStream(4000);
    SimResult tick = tickCore.run(tickStream, 0, budget);

    CounterRegistry evReg;
    CoreParams evParams;
    evParams.runMode = RunMode::EventDriven;
    O3Core evCore(evParams, evReg);
    RdrandChainStream evStream(4000);
    SimResult ev = evCore.run(evStream, 0, budget);

    EXPECT_NE(ev.committedInsts, tick.committedInsts)
        << "seeded lost wakeup escaped the equivalence tier";
    EXPECT_LT(ev.committedInsts, tick.committedInsts)
        << "an event-driven run cannot outrun the tick loop on "
           "the same cycle budget";
}
#endif

#ifdef EVAX_MUTATION_STALE_CHECKPOINT
TEST(MutationDetection, StaleCheckpointIsFlagged)
{
    // The seeded bug snapshots the architectural state one full
    // sampling window before the checkpoint boundary, so detailed
    // simulation resumes from stale registers/memory. The commit
    // digest chain is built from the op stream and stays clean —
    // the final architectural digest is what must go red.
    StreamSpec spec;
    spec.name = "compress";
    spec.seed = 3;
    spec.length = 30000;
    CoreParams params;
    auto factory = [&spec] { return makeStream(spec); };
    FfReference ref = refFullRun(params, factory);

    FfOptions opts;
    opts.skipInsts = 10000;
    opts.sampleInterval = 1000;
    FastForwardRunner runner(params, DefenseMode::None, opts);
    FfResult ff = runner.run(factory);
    EXPECT_NE(ff.archDigest, ref.archDigest)
        << "seeded stale checkpoint escaped the equivalence tier";
}
#endif

#endif // EVAX_MUTATION_ACTIVE
