/**
 * @file
 * Unit tests for the counter registry, feature catalog and sampler.
 */

#include <gtest/gtest.h>

#include <set>

#include "hpc/counters.hh"
#include "hpc/features.hh"
#include "hpc/sampler.hh"

namespace evax
{
namespace
{

TEST(CounterRegistry, GetOrAddIsIdempotent)
{
    CounterRegistry reg;
    CounterId a = reg.getOrAdd("x.y");
    CounterId b = reg.getOrAdd("x.y");
    EXPECT_EQ(a, b);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(CounterRegistry, IncAndValue)
{
    CounterRegistry reg;
    CounterId a = reg.getOrAdd("ctr");
    reg.inc(a);
    reg.inc(a, 2.5);
    EXPECT_DOUBLE_EQ(reg.value(a), 3.5);
    EXPECT_DOUBLE_EQ(reg.valueByName("ctr"), 3.5);
}

TEST(CounterRegistry, FindMissing)
{
    CounterRegistry reg;
    EXPECT_EQ(reg.find("nope"), INVALID_COUNTER);
}

TEST(CounterRegistry, ResetValuesKeepsIds)
{
    CounterRegistry reg;
    CounterId a = reg.getOrAdd("ctr");
    reg.inc(a, 7);
    reg.resetValues();
    EXPECT_DOUBLE_EQ(reg.value(a), 0.0);
    EXPECT_EQ(reg.find("ctr"), a);
}

TEST(FeatureCatalog, Arity)
{
    EXPECT_EQ(FeatureCatalog::baseFeatures().size(),
              FeatureCatalog::numBase);
    EXPECT_EQ(FeatureCatalog::engineered().size(),
              FeatureCatalog::numEngineered);
    EXPECT_EQ(FeatureCatalog::evaxFeatureNames().size(),
              FeatureCatalog::numEvax);
    EXPECT_EQ(FeatureCatalog::numEvax, 145u);
    EXPECT_EQ(FeatureCatalog::numPerSpectron, 106u);
}

TEST(FeatureCatalog, BaseNamesUnique)
{
    std::set<std::string> seen;
    for (const auto &n : FeatureCatalog::baseFeatures())
        EXPECT_TRUE(seen.insert(n).second) << "duplicate: " << n;
}

TEST(FeatureCatalog, EngineeredSourcesExist)
{
    for (const auto &e : FeatureCatalog::engineered()) {
        EXPECT_LT(FeatureCatalog::baseIndex(e.a),
                  FeatureCatalog::numBase);
        EXPECT_LT(FeatureCatalog::baseIndex(e.b),
                  FeatureCatalog::numBase);
    }
}

TEST(FeatureCatalog, EngineeredIsAndLike)
{
    std::vector<double> base(FeatureCatalog::numBase, 0.0);
    const auto &eng = FeatureCatalog::engineered();
    // Only one half of the first pair fires: AND must stay 0.
    base[FeatureCatalog::baseIndex(eng[0].a)] = 1.0;
    auto out = FeatureCatalog::computeEngineered(base, eng);
    EXPECT_DOUBLE_EQ(out[0], 0.0);
    // Both halves fire: AND fires with the weaker strength.
    base[FeatureCatalog::baseIndex(eng[0].b)] = 0.4;
    out = FeatureCatalog::computeEngineered(base, eng);
    EXPECT_DOUBLE_EQ(out[0], 0.4);
}

TEST(Normalizer, TracksMaxAndClamps)
{
    Normalizer n(2);
    std::vector<double> v{10.0, 0.0};
    n.normalize(v);
    EXPECT_DOUBLE_EQ(v[0], 1.0); // first sighting defines the max
    v = {5.0, 0.0};
    n.normalize(v);
    EXPECT_DOUBLE_EQ(v[0], 0.5);
    v = {20.0, 0.0};
    n.normalize(v);
    EXPECT_DOUBLE_EQ(v[0], 1.0); // new max
}

TEST(Normalizer, FrozenMaxIsStable)
{
    Normalizer n(1);
    std::vector<double> v{10.0};
    n.normalize(v);
    n.freeze();
    v = {40.0};
    n.normalize(v);
    EXPECT_DOUBLE_EQ(v[0], 1.0); // clamped, max unchanged
    EXPECT_DOUBLE_EQ(n.maxSeen()[0], 10.0);
}

TEST(Sampler, EmitsWindowsAtInterval)
{
    CounterRegistry reg;
    Sampler sampler(reg, 100);
    CounterId ctr = reg.getOrAdd(
        FeatureCatalog::baseFeatures().front());

    uint64_t windows = 0;
    for (uint64_t insts = 10; insts <= 1000; insts += 10) {
        reg.inc(ctr, 3);
        if (sampler.tick(insts, insts * 2))
            ++windows;
    }
    EXPECT_EQ(windows, 10u);
    EXPECT_EQ(sampler.windowsClosed(), 10u);
}

TEST(Sampler, DeltasNotAbsolutes)
{
    CounterRegistry reg;
    Sampler sampler(reg, 10);
    CounterId ctr = reg.getOrAdd(
        FeatureCatalog::baseFeatures().front());

    reg.inc(ctr, 100);
    ASSERT_TRUE(sampler.tick(10, 10));
    double first = sampler.latest().base.front();
    EXPECT_DOUBLE_EQ(first, 1.0);

    // No counter activity in the second window: delta must be 0.
    ASSERT_TRUE(sampler.tick(20, 20));
    EXPECT_DOUBLE_EQ(sampler.latest().base.front(), 0.0);
}

TEST(Sampler, StraddledWindowsSkipAhead)
{
    CounterRegistry reg;
    Sampler sampler(reg, 10);
    // One big commit group jumps several boundaries.
    EXPECT_TRUE(sampler.tick(55, 100));
    EXPECT_FALSE(sampler.tick(58, 110));
    EXPECT_TRUE(sampler.tick(60, 120));
}

TEST(Sampler, ClosesAtExactIntervalBoundaries)
{
    // The single-pass window close must fire exactly when the
    // committed count reaches the boundary — not one tick early,
    // not twice on the same count — at every deployed interval.
    for (uint64_t interval :
         {100ULL, 1000ULL, 10000ULL, 100000ULL}) {
        CounterRegistry reg;
        Sampler sampler(reg, interval);
        EXPECT_FALSE(sampler.tick(interval - 1, 1)) << interval;
        EXPECT_TRUE(sampler.tick(interval, 2)) << interval;
        EXPECT_FALSE(sampler.tick(interval, 3))
            << interval << ": same count must not re-close";
        EXPECT_FALSE(sampler.tick(2 * interval - 1, 4)) << interval;
        EXPECT_TRUE(sampler.tick(2 * interval, 5)) << interval;
        EXPECT_EQ(sampler.windowsClosed(), 2u) << interval;
    }
}

TEST(Sampler, ExactBoundaryDeltasAreDense)
{
    // A boundary close snapshots deltas for the full base-feature
    // vector in one pass; counters bumped since the last close show
    // their delta, untouched ones show zero.
    CounterRegistry reg;
    Sampler sampler(reg, 100);
    const auto &names = FeatureCatalog::baseFeatures();
    CounterId first = reg.getOrAdd(names.front());
    CounterId last = reg.getOrAdd(names.back());
    reg.inc(first, 42);
    reg.inc(last, 7);
    ASSERT_TRUE(sampler.tick(100, 50));
    const FeatureSnapshot &snap = sampler.latest();
    ASSERT_EQ(snap.base.size(), names.size());
    EXPECT_DOUBLE_EQ(snap.base.front(), 1.0); // normalized max
    EXPECT_DOUBLE_EQ(snap.base.back(), 1.0);
    size_t nonzero = 0;
    for (double v : snap.base) {
        if (v != 0.0)
            ++nonzero;
    }
    EXPECT_EQ(nonzero, 2u);
}

TEST(Sampler, RestartResetsBoundaryAndBaseline)
{
    CounterRegistry reg;
    Sampler sampler(reg, 1000);
    CounterId ctr = reg.getOrAdd(
        FeatureCatalog::baseFeatures().front());
    reg.inc(ctr, 5);
    ASSERT_TRUE(sampler.tick(1000, 10));
    sampler.restart();
    EXPECT_EQ(sampler.windowsClosed(), 0u);
    // The baseline moved to the current counter values: an idle
    // first window after restart has an all-zero delta.
    ASSERT_TRUE(sampler.tick(1000, 20));
    EXPECT_DOUBLE_EQ(sampler.latest().base.front(), 0.0);
}

} // anonymous namespace
} // namespace evax
